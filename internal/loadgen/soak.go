package loadgen

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// The soak runner: minutes-scale sustained open-loop traffic with
// mid-flight events (an adapt promotion, a tenant adapter hot-swap, an
// injected workload drift), cut into fixed windows. Two properties are
// gated, because they are the two ways a serving process quietly rots
// under long-running load:
//
//   - No latency cliff: the worst windowed P99 must stay within a bounded
//     ratio of the median windowed P99. A model hot-swap that stalls the
//     pipeline, a cache flush that triggers a recompute storm, or a
//     fine-tune that starves the serving path all show up here and nowhere
//     else — aggregate P99 over the whole run averages cliffs away.
//   - No memory creep: the post-GC live heap, sampled at every window
//     edge, must have ~zero slope over the measurement windows. A leak of
//     one pooled buffer per promotion is invisible in a 5-second bench and
//     unmissable here.

// SoakEvent is a mid-run action: Do fires in its own goroutine once the
// run clock passes After, and the window containing it is annotated in the
// report (so a P99 excursion can be read against what caused it).
type SoakEvent struct {
	After time.Duration
	Name  string
	Do    func() error
}

// SoakConfig configures a soak scenario.
type SoakConfig struct {
	Target      Target
	Schedule    Schedule
	Duration    time.Duration
	NewRequest  func(i int64) *Request
	MaxInflight int
	// Window is the statistics window (default 1s).
	Window time.Duration
	// Events fire mid-run at their After offsets.
	Events []SoakEvent
	// WarmupWindows excludes at least this many leading windows from the
	// gates (default 3). The effective cut is the larger of this and the
	// stabilization point WarmupCut detects on the windowed throughput.
	WarmupWindows int
	// P99Ratio is the no-cliff gate: max windowed P99 / median windowed
	// P99 over the measurement windows must not exceed it (default 2).
	P99Ratio float64
	// HeapSlope is the no-creep gate: the OLS slope of post-GC live-heap
	// bytes over the measurement windows must stay below this, in
	// bytes/second (default 128 KiB/s).
	HeapSlope float64
	// DisableGC skips the forced GC at window edges. The live-heap series
	// then rides the collector's sawtooth and the creep gate loosens to a
	// trend check; keep GC on unless the scenario is latency-critical
	// below the millisecond.
	DisableGC bool
	// Logf, when set, receives one line per window and per event.
	Logf func(format string, args ...any)
}

// WindowStats is one statistics window of a soak run.
type WindowStats struct {
	Index         int     `json:"index"`
	StartS        float64 `json:"start_s"` // window start, seconds from run start
	Offered       int64   `json:"offered"`
	OK            int64   `json:"ok"`
	Backpressured int64   `json:"backpressured"`
	Dropped       int64   `json:"dropped"`
	Timeouts      int64   `json:"timeouts"`
	Errors        int64   `json:"errors"`
	QPS           float64 `json:"qps"`    // completed OK / window
	P50MS         float64 `json:"p50_ms"` // windowed, from snapshot subtraction
	P99MS         float64 `json:"p99_ms"`
	HeapBytes     uint64  `json:"heap_bytes"`   // post-GC live heap at window close
	AllocPerOK    float64 `json:"alloc_per_ok"` // bytes allocated per OK in the window
	Event         string  `json:"event,omitempty"`
}

// GateResult is one soak gate's verdict.
type GateResult struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Limit  float64 `json:"limit"`
	Passed bool    `json:"passed"`
	Detail string  `json:"detail"`
}

// SoakResult is a completed soak run.
type SoakResult struct {
	Run       Result        `json:"run"`
	Windows   []WindowStats `json:"windows"`
	WarmupCut int           `json:"warmup_cut"` // windows excluded from the gates
	Gates     []GateResult  `json:"gates"`
	Passed    bool          `json:"passed"`
}

// Soak executes the scenario and evaluates the gates. It blocks for the
// full duration plus straggler drain.
func Soak(cfg SoakConfig) SoakResult {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.WarmupWindows <= 0 {
		cfg.WarmupWindows = 3
	}
	if cfg.P99Ratio <= 0 {
		cfg.P99Ratio = 2
	}
	if cfg.HeapSlope <= 0 {
		cfg.HeapSlope = 128 << 10
	}

	runner := NewRunner(Options{
		Target:      cfg.Target,
		Schedule:    cfg.Schedule,
		Duration:    cfg.Duration,
		NewRequest:  cfg.NewRequest,
		MaxInflight: cfg.MaxInflight,
	})

	// Mid-run events: fired on their own timers, logged with their actual
	// fire time so each lands in the window that contained it.
	var evMu sync.Mutex
	type firedEvent struct {
		at   time.Duration
		name string
	}
	var fired []firedEvent
	start := time.Now()
	timers := make([]*time.Timer, 0, len(cfg.Events))
	for _, ev := range cfg.Events {
		ev := ev
		timers = append(timers, time.AfterFunc(ev.After, func() {
			// Record at fire time, not completion: a slow Do (a paced
			// fine-tune, a staged restart) must annotate the window its
			// effects started in, not whichever one it happened to end in.
			at := time.Since(start)
			evMu.Lock()
			fired = append(fired, firedEvent{at, ev.Name})
			evMu.Unlock()
			if cfg.Logf != nil {
				cfg.Logf("soak: event %q at %.1fs", ev.Name, at.Seconds())
			}
			if err := ev.Do(); err != nil {
				failAt := time.Since(start)
				evMu.Lock()
				fired = append(fired, firedEvent{failAt, ev.Name + " FAILED: " + err.Error()})
				evMu.Unlock()
				if cfg.Logf != nil {
					cfg.Logf("soak: event %q failed at %.1fs: %v", ev.Name, failAt.Seconds(), err)
				}
			}
		}))
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	done := make(chan Result, 1)
	go func() { done <- runner.Run() }()

	// The window loop: snapshot-subtract counters and histogram, force a
	// GC, read the live heap. Runs until the runner finishes (arrival
	// window closed and stragglers drained).
	var windows []WindowStats
	prevCounts, prevSnap := runner.Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	prevAlloc := ms.TotalAlloc
	tick := time.NewTicker(cfg.Window)
	defer tick.Stop()

	var run Result
	running := true
	for running {
		select {
		case run = <-done:
			running = false
		case <-tick.C:
		}
		counts, snap := runner.Snapshot()
		wsnap := snap
		wsnap.Sub(&prevSnap)
		if !cfg.DisableGC {
			runtime.GC()
		}
		runtime.ReadMemStats(&ms)
		w := WindowStats{
			Index:         len(windows),
			StartS:        float64(len(windows)) * cfg.Window.Seconds(),
			Offered:       counts.Offered - prevCounts.Offered,
			OK:            counts.OK - prevCounts.OK,
			Backpressured: counts.Backpressured - prevCounts.Backpressured,
			Dropped:       counts.Dropped - prevCounts.Dropped,
			Timeouts:      counts.Timeouts - prevCounts.Timeouts,
			Errors:        counts.Errors - prevCounts.Errors,
			QPS:           float64(counts.OK-prevCounts.OK) / cfg.Window.Seconds(),
			P50MS:         wsnap.Quantile(0.50) * 1e3,
			P99MS:         wsnap.Quantile(0.99) * 1e3,
			HeapBytes:     ms.HeapAlloc,
		}
		if w.OK > 0 {
			w.AllocPerOK = float64(ms.TotalAlloc-prevAlloc) / float64(w.OK)
		}
		// Every event still in the fired log belongs to this window: the log
		// is drained at each window close, so entries are exactly the events
		// since the previous close.
		evMu.Lock()
		for _, ev := range fired {
			if w.Event != "" {
				w.Event += "; "
			}
			w.Event += fmt.Sprintf("%s @%.1fs", ev.name, ev.at.Seconds())
		}
		fired = fired[:0]
		evMu.Unlock()
		prevCounts, prevSnap, prevAlloc = counts, snap, ms.TotalAlloc
		windows = append(windows, w)
		if cfg.Logf != nil {
			cfg.Logf("soak: w%03d qps=%.0f p50=%.2fms p99=%.2fms heap=%.1fMB bp=%d drop=%d err=%d %s",
				w.Index, w.QPS, w.P50MS, w.P99MS, float64(w.HeapBytes)/(1<<20),
				w.Backpressured, w.Dropped, w.Errors+w.Timeouts, w.Event)
		}
	}

	res := SoakResult{Run: run, Windows: windows}
	res.WarmupCut, res.Gates = soakGates(windows, cfg)
	res.Passed = true
	for _, g := range res.Gates {
		res.Passed = res.Passed && g.Passed
	}
	return res
}

// soakGates evaluates the no-cliff, no-creep, and no-failure gates over
// the post-warmup windows.
// eventAdjacent reports whether window idx, its predecessor, or its
// successor carries a fired event annotation.
func eventAdjacent(windows []WindowStats, idx int) bool {
	for _, w := range windows {
		if w.Event != "" && w.Index >= idx-1 && w.Index <= idx+1 {
			return true
		}
	}
	return false
}

func soakGates(windows []WindowStats, cfg SoakConfig) (int, []GateResult) {
	// Warmup: the configured floor, or later if the throughput series is
	// still stabilizing (cache fill, connection ramp, JIT-ish first GCs).
	qps := make([]float64, len(windows))
	for i, w := range windows {
		qps[i] = w.QPS
	}
	cut := cfg.WarmupWindows
	if det := WarmupCut(qps, 5, 0.15); det > cut {
		cut = det
	}
	if cut >= len(windows) {
		cut = len(windows) - 1
	}
	if cut < 0 {
		cut = 0
	}
	meas := windows[cut:]

	var gates []GateResult

	// No-cliff: max windowed P99 vs the median windowed P99. Windows with
	// too few completions for a P99 to mean anything are skipped.
	//
	// The gate exists to catch cliffs *caused by the scenario's events* (a
	// hot-swap stall, a cache-flush storm) — and those are event-adjacent
	// by construction. A window nowhere near any event can still blow out
	// on a shared host when the whole process is descheduled for one slice,
	// which says nothing about the system under test. So: event-adjacent
	// windows (the event's window ±1) are held to the strict ratio, and
	// exactly one non-adjacent outlier is excused if every other window is
	// within the ratio — the excusal is spelled out in the gate detail, not
	// silently absorbed.
	var p99s []float64
	worst, worstIdx := 0.0, -1
	second, secondIdx := 0.0, -1
	for _, w := range meas {
		if w.OK < 20 {
			continue
		}
		p99s = append(p99s, w.P99MS)
		if w.P99MS > worst {
			second, secondIdx = worst, worstIdx
			worst, worstIdx = w.P99MS, w.Index
		} else if w.P99MS > second {
			second, secondIdx = w.P99MS, w.Index
		}
	}
	if len(p99s) == 0 {
		gates = append(gates, GateResult{
			Name: "p99_ratio", Limit: cfg.P99Ratio,
			Detail: "no window had enough completions to evaluate",
		})
	} else {
		sort.Float64s(p99s)
		median := p99s[len(p99s)/2]
		ratio := 0.0
		if median > 0 {
			ratio = worst / median
		}
		passed := ratio <= cfg.P99Ratio
		detail := fmt.Sprintf("worst window P99 %.2fms (w%03d) vs median %.2fms", worst, worstIdx, median)
		if !passed && median > 0 && !eventAdjacent(windows, worstIdx) && second/median <= cfg.P99Ratio {
			passed = true
			ratio = second / median
			detail = fmt.Sprintf("w%03d P99 %.2fms excused as ambient (no event within ±1 window); next-worst w%03d %.2fms vs median %.2fms",
				worstIdx, worst, secondIdx, second, median)
		}
		gates = append(gates, GateResult{
			Name: "p99_ratio", Value: ratio, Limit: cfg.P99Ratio,
			Passed: passed,
			Detail: detail,
		})
	}

	// No-creep: OLS slope of the post-GC live heap across measurement
	// windows. Negative slopes (heap shrinking) pass trivially.
	xs := make([]float64, len(meas))
	ys := make([]float64, len(meas))
	for i, w := range meas {
		xs[i] = w.StartS
		ys[i] = float64(w.HeapBytes)
	}
	slope := Slope(xs, ys)
	gates = append(gates, GateResult{
		Name: "heap_slope", Value: slope, Limit: cfg.HeapSlope,
		Passed: slope <= cfg.HeapSlope,
		Detail: fmt.Sprintf("live heap %.0f B/s over %d windows (%.1f→%.1f MB)",
			slope, len(meas), float64(meas[0].HeapBytes)/(1<<20), float64(meas[len(meas)-1].HeapBytes)/(1<<20)),
	})

	// No-failure: transport errors and timeouts are never acceptable in a
	// soak — backpressure (503) and shed arrivals have their own columns
	// and are the scenario designer's call, but a failed request is a bug.
	var errs int64
	for _, w := range meas {
		errs += w.Errors + w.Timeouts
	}
	gates = append(gates, GateResult{
		Name: "errors", Value: float64(errs), Limit: 0, Passed: errs == 0,
		Detail: fmt.Sprintf("%d transport errors/timeouts after warmup", errs),
	})

	return cut, gates
}
