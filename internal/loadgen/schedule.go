package loadgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Schedule is an open-loop arrival plan: At(i) is the intended start time
// of the i-th request, as an offset from the run start. Implementations
// must be monotonically non-decreasing in i and safe for concurrent
// readers; the runner calls At once per arrival on the dispatch goroutine.
//
// The schedule is the whole point of open-loop generation: arrival times
// are a function of i alone, fixed before the run, so a slow server cannot
// slow the arrival process down (coordinated omission) — it can only make
// latencies, drops, and backpressure counts worse.
type Schedule interface {
	// At returns the intended start offset of request i (i >= 0).
	At(i int64) time.Duration
	// Rate returns the nominal average arrival rate in requests/second,
	// for reporting.
	Rate() float64
}

// Constant arrives at a fixed rate: At(i) = i/QPS.
type Constant struct {
	QPS float64
}

func (c Constant) At(i int64) time.Duration {
	return time.Duration(float64(i) / c.QPS * float64(time.Second))
}
func (c Constant) Rate() float64  { return c.QPS }
func (c Constant) String() string { return fmt.Sprintf("const:%g", c.QPS) }

// Ramp sweeps linearly from From to To QPS over Duration. Arrivals are the
// inverse of the cumulative rate N(t) = From·t + (To−From)·t²/(2·D): the
// i-th arrival solves N(t) = i in closed form, so the instantaneous rate
// really is linear in time rather than stepped.
type Ramp struct {
	From, To float64
	Duration time.Duration
}

func (r Ramp) At(i int64) time.Duration {
	d := r.Duration.Seconds()
	n := float64(i)
	slope := (r.To - r.From) / d
	if math.Abs(slope) < 1e-12 {
		return time.Duration(n / r.From * float64(time.Second))
	}
	// Solve slope/2·t² + From·t − n = 0 for the positive root.
	t := (-r.From + math.Sqrt(r.From*r.From+2*slope*n)) / slope
	return time.Duration(t * float64(time.Second))
}
func (r Ramp) Rate() float64 { return (r.From + r.To) / 2 }
func (r Ramp) String() string {
	return fmt.Sprintf("ramp:%g-%g", r.From, r.To)
}

// Sine modulates the rate around Base with amplitude Amp and the given
// Period: qps(t) = Base + Amp·sin(2πt/Period) — the diurnal-load shape.
// The cumulative arrival count N(t) = Base·t + Amp·P/2π·(1−cos(2πt/P)) has
// no closed-form inverse; At solves it with a few Newton steps seeded at
// the constant-rate guess (N is strictly increasing while Amp < Base, so
// the iteration is well-behaved).
type Sine struct {
	Base, Amp float64
	Period    time.Duration
}

func (s Sine) At(i int64) time.Duration {
	p := s.Period.Seconds()
	w := 2 * math.Pi / p
	n := float64(i)
	cum := func(t float64) float64 { return s.Base*t + s.Amp/w*(1-math.Cos(w*t)) }
	rate := func(t float64) float64 { return s.Base + s.Amp*math.Sin(w*t) }
	t := n / s.Base // constant-rate seed
	for iter := 0; iter < 8; iter++ {
		f := cum(t) - n
		r := rate(t)
		if r < s.Base*1e-3 {
			r = s.Base * 1e-3 // never divide by a vanishing rate
		}
		step := f / r
		t -= step
		if t < 0 {
			t = 0
		}
		if math.Abs(step) < 1e-9 {
			break
		}
	}
	return time.Duration(t * float64(time.Second))
}
func (s Sine) Rate() float64 { return s.Base }
func (s Sine) String() string {
	return fmt.Sprintf("sine:%g:%g:%s", s.Base, s.Amp, s.Period)
}

// Replay re-issues a recorded arrival trace. Offsets must be sorted
// ascending; when the trace is exhausted it wraps, shifted by its span, so
// any recorded burst pattern repeats indefinitely.
type Replay struct {
	Offsets []time.Duration
	// Span is the trace length used for the wrap shift; 0 means the last
	// offset (plus one mean gap, so the seam doesn't double-fire).
	Span time.Duration
}

func (r Replay) span() time.Duration {
	if r.Span > 0 {
		return r.Span
	}
	last := r.Offsets[len(r.Offsets)-1]
	return last + last/time.Duration(len(r.Offsets))
}

func (r Replay) At(i int64) time.Duration {
	n := int64(len(r.Offsets))
	return r.Offsets[i%n] + time.Duration(i/n)*r.span()
}

func (r Replay) Rate() float64 {
	sp := r.span().Seconds()
	if sp <= 0 {
		return 0
	}
	return float64(len(r.Offsets)) / sp
}

// ParseSchedule builds a schedule from its CLI spec:
//
//	const:QPS            constant arrival rate
//	ramp:FROM-TO         linear sweep over the run duration
//	sine:BASE:AMP:PERIOD rate oscillation (PERIOD is a Go duration)
//
// A bare number is shorthand for const:QPS. Replay schedules are built
// directly from trace offsets, not from a spec.
func ParseSchedule(spec string, runDuration time.Duration) (Schedule, error) {
	if q, err := strconv.ParseFloat(spec, 64); err == nil {
		spec = "const:" + strconv.FormatFloat(q, 'g', -1, 64)
	}
	kind, rest, _ := strings.Cut(spec, ":")
	switch kind {
	case "const":
		q, err := strconv.ParseFloat(rest, 64)
		if err != nil || q <= 0 {
			return nil, fmt.Errorf("loadgen: const schedule wants a positive QPS, got %q", rest)
		}
		return Constant{QPS: q}, nil
	case "ramp":
		from, to, ok := strings.Cut(rest, "-")
		if !ok {
			return nil, fmt.Errorf("loadgen: ramp schedule is ramp:FROM-TO, got %q", spec)
		}
		f, err1 := strconv.ParseFloat(from, 64)
		t, err2 := strconv.ParseFloat(to, 64)
		if err1 != nil || err2 != nil || f <= 0 || t <= 0 {
			return nil, fmt.Errorf("loadgen: ramp schedule wants positive QPS endpoints, got %q", spec)
		}
		if runDuration <= 0 {
			return nil, fmt.Errorf("loadgen: ramp schedule needs a positive run duration")
		}
		return Ramp{From: f, To: t, Duration: runDuration}, nil
	case "sine":
		parts := strings.Split(rest, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("loadgen: sine schedule is sine:BASE:AMP:PERIOD, got %q", spec)
		}
		base, err1 := strconv.ParseFloat(parts[0], 64)
		amp, err2 := strconv.ParseFloat(parts[1], 64)
		period, err3 := time.ParseDuration(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("loadgen: bad sine schedule %q", spec)
		}
		if base <= 0 || amp < 0 || amp >= base || period <= 0 {
			return nil, fmt.Errorf("loadgen: sine schedule wants base > 0, 0 <= amp < base, period > 0, got %q", spec)
		}
		return Sine{Base: base, Amp: amp, Period: period}, nil
	}
	return nil, fmt.Errorf("loadgen: unknown schedule %q (want const:QPS, ramp:FROM-TO, or sine:BASE:AMP:PERIOD)", spec)
}
