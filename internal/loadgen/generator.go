package loadgen

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dace/internal/telemetry"
)

// Options configures one open-loop run.
type Options struct {
	Target   Target
	Schedule Schedule
	// Duration bounds the arrival window: the run dispatches every request
	// whose scheduled start falls inside it, then waits for in-flight
	// requests to complete.
	Duration time.Duration
	// NewRequest supplies the i-th request body. It is called from the
	// dispatch path and from worker goroutines, so it must be safe for
	// concurrent use and should not block (pre-encode bodies).
	NewRequest func(i int64) *Request
	// MaxInflight bounds concurrent requests (default 1024). An arrival
	// that finds the window full is dropped and counted — the arrival
	// clock is never blocked.
	MaxInflight int
	// Hist, when non-nil, receives every successful request's
	// intended-start→completion latency in seconds. Nil allocates one
	// internally; pass an external histogram to aggregate across runs.
	Hist *telemetry.Histogram
}

// Counts are the per-class outcome counters of a run, all cumulative.
type Counts struct {
	Offered       int64 `json:"offered"`       // arrivals the schedule generated
	Sent          int64 `json:"sent"`          // arrivals that acquired an in-flight slot
	OK            int64 `json:"ok"`            // 2xx responses
	Backpressured int64 `json:"backpressured"` // 503/429 responses
	Dropped       int64 `json:"dropped"`       // arrivals shed: in-flight window full
	Timeouts      int64 `json:"timeouts"`      // transport timeouts
	Errors        int64 `json:"errors"`        // other transport errors + unexpected statuses
	InflightHWM   int64 `json:"inflight_hwm"`  // in-flight high-watermark
}

// Result is one completed run.
type Result struct {
	Counts
	Elapsed     time.Duration               `json:"elapsed_ns"`
	OfferedQPS  float64                     `json:"offered_qps"`  // Offered / Elapsed
	AchievedQPS float64                     `json:"achieved_qps"` // OK / Elapsed
	Hist        telemetry.HistogramSnapshot `json:"-"`            // successful-request latency, seconds
}

// Runner executes one open-loop run. Create with NewRunner, start with
// Run; Snapshot may be called concurrently with Run for windowed views.
type Runner struct {
	opt  Options
	hist *telemetry.Histogram

	offered, sent, ok, backp, dropped, timeouts, errs atomic.Int64
	inflight, hwm                                     atomic.Int64
}

// NewRunner validates options and builds a runner.
func NewRunner(opt Options) *Runner {
	if opt.MaxInflight <= 0 {
		opt.MaxInflight = 1024
	}
	h := opt.Hist
	if h == nil {
		h = &telemetry.Histogram{}
	}
	return &Runner{opt: opt, hist: h}
}

// Snapshot returns the current counters and latency histogram, safe to
// call while Run is in progress — this is how the soak runner extracts
// per-window statistics without pausing traffic.
func (r *Runner) Snapshot() (Counts, telemetry.HistogramSnapshot) {
	return Counts{
		Offered:       r.offered.Load(),
		Sent:          r.sent.Load(),
		OK:            r.ok.Load(),
		Backpressured: r.backp.Load(),
		Dropped:       r.dropped.Load(),
		Timeouts:      r.timeouts.Load(),
		Errors:        r.errs.Load(),
		InflightHWM:   r.hwm.Load(),
	}, r.hist.Snapshot()
}

// Run executes the schedule: it dispatches every arrival inside the
// duration window at its intended time, bounds in-flight concurrency by
// shedding (never by stalling the clock), waits for stragglers, and
// returns the aggregated result.
func (r *Runner) Run() Result {
	sem := make(chan struct{}, r.opt.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()

	for i := int64(0); ; i++ {
		at := r.opt.Schedule.At(i)
		if at > r.opt.Duration {
			break
		}
		// Sleep until the intended start. A late wakeup (scheduler jitter,
		// or a previous same-tick arrival) dispatches immediately — the
		// deficit is charged to the request's measured latency, because the
		// intended time, not the actual dispatch time, is its start.
		if d := at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		r.offered.Add(1)
		select {
		case sem <- struct{}{}:
		default:
			// In-flight window full: shed this arrival. Dropping (with its
			// own counter) keeps the arrival process independent of server
			// speed; blocking here would be coordinated omission.
			r.dropped.Add(1)
			continue
		}
		wg.Add(1)
		intended := start.Add(at)
		go func(i int64) {
			defer func() {
				<-sem
				r.inflight.Add(-1)
				wg.Done()
			}()
			if cur := r.inflight.Add(1); cur > r.hwm.Load() {
				for {
					old := r.hwm.Load()
					if cur <= old || r.hwm.CompareAndSwap(old, cur) {
						break
					}
				}
			}
			r.sent.Add(1)
			resp, err := r.opt.Target.Do(r.opt.NewRequest(i))
			switch {
			case err != nil && isTimeout(err):
				r.timeouts.Add(1)
			case err != nil:
				r.errs.Add(1)
			case resp.Status >= 200 && resp.Status < 300:
				// Latency from the *intended* start: queueing delay anywhere
				// — dispatch backlog, server queue, slow response — lands in
				// the distribution.
				r.hist.Observe(time.Since(intended).Seconds())
				r.ok.Add(1)
			case resp.Status == http.StatusServiceUnavailable || resp.Status == http.StatusTooManyRequests:
				r.backp.Add(1)
			default:
				r.errs.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	counts, snap := r.Snapshot()
	return Result{
		Counts:      counts,
		Elapsed:     elapsed,
		OfferedQPS:  float64(counts.Offered) / elapsed.Seconds(),
		AchievedQPS: float64(counts.OK) / elapsed.Seconds(),
		Hist:        snap,
	}
}

// Run is the one-shot convenience wrapper around NewRunner(...).Run().
func Run(opt Options) Result { return NewRunner(opt).Run() }

// ClosedLoop measures the same target the way cmd/bench's serve scenarios
// do: `clients` goroutines in a tight request/response loop, `total`
// requests, latency measured from each request's *send* (not from a
// schedule). It exists as the comparison arm for coordinated-omission
// sensitivity: at saturation its percentiles stay flattering — every stall
// suppresses exactly the requests that would have recorded it — while the
// open-loop runner's percentiles absorb the queueing delay.
func ClosedLoop(target Target, newRequest func(i int64) *Request, clients int, total int64) Result {
	hist := &telemetry.Histogram{}
	var next, okN, backpN, errN, toN atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				t0 := time.Now()
				resp, err := target.Do(newRequest(i))
				switch {
				case err != nil && isTimeout(err):
					toN.Add(1)
				case err != nil:
					errN.Add(1)
				case resp.Status >= 200 && resp.Status < 300:
					hist.Observe(time.Since(t0).Seconds())
					okN.Add(1)
				case resp.Status == http.StatusServiceUnavailable || resp.Status == http.StatusTooManyRequests:
					backpN.Add(1)
				default:
					errN.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	counts := Counts{
		Offered:       total,
		Sent:          total,
		OK:            okN.Load(),
		Backpressured: backpN.Load(),
		Timeouts:      toN.Load(),
		Errors:        errN.Load(),
		InflightHWM:   int64(clients),
	}
	return Result{
		Counts:      counts,
		Elapsed:     elapsed,
		OfferedQPS:  float64(total) / elapsed.Seconds(),
		AchievedQPS: float64(counts.OK) / elapsed.Seconds(),
		Hist:        hist.Snapshot(),
	}
}
