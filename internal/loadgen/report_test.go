package loadgen

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dace/internal/telemetry"
)

// syntheticResult builds a Result whose histogram holds n samples at
// latency sec.
func syntheticResult(n int, sec float64) Result {
	h := &telemetry.Histogram{}
	for i := 0; i < n; i++ {
		h.Observe(sec)
	}
	return Result{
		Counts:      Counts{Offered: int64(n), Sent: int64(n), OK: int64(n)},
		Elapsed:     time.Second,
		OfferedQPS:  float64(n),
		AchievedQPS: float64(n),
		Hist:        h.Snapshot(),
	}
}

func TestRunCSV(t *testing.T) {
	runs := []Result{syntheticResult(100, 0.010), syntheticResult(100, 0.012)}
	var sb strings.Builder
	if err := WriteRunCSV(&sb, runs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "run,offered,sent,ok,") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,100,100,100,") {
		t.Errorf("row 0: %s", lines[1])
	}
}

func TestSoakCSVAndMarkdown(t *testing.T) {
	res := SoakResult{
		Run:     syntheticResult(500, 0.005),
		Windows: fabricate(6, 5.0, 32<<20),
		Gates: []GateResult{
			{Name: "p99_ratio", Value: 1.2, Limit: 2, Passed: true, Detail: "ok"},
			{Name: "heap_slope", Value: 10, Limit: 131072, Passed: true, Detail: "ok"},
		},
		WarmupCut: 2,
		Passed:    true,
	}
	res.Windows[3].Event = "promotion"

	var csv strings.Builder
	if err := WriteSoakCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 7 {
		t.Errorf("soak CSV lines = %d, want 7 (header + 6 windows)", got)
	}
	if !strings.Contains(csv.String(), `"promotion"`) {
		t.Error("soak CSV missing event annotation")
	}

	var md strings.Builder
	if err := WriteSoakMarkdown(&md, "drift-soak", res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"drift-soak — PASS", "| p99_ratio | 1.20 |", "w003: promotion", "(warmup)"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("soak Markdown missing %q:\n%s", want, md.String())
		}
	}
}

func TestBaselineRoundTripAndCompare(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	base := []Result{
		syntheticResult(200, 0.010), syntheticResult(200, 0.0101),
		syntheticResult(200, 0.0099), syntheticResult(200, 0.0102), syntheticResult(200, 0.0098),
	}
	if err := SaveBaseline(path, "direct-serve", "const:200", base, "2026-08-09"); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "direct-serve" || len(loaded.Metrics["p99_ms"]) != 5 {
		t.Fatalf("loaded baseline: %+v", loaded)
	}

	// A clean 3x latency regression must be flagged on the latency metrics.
	regressed := []Result{
		syntheticResult(200, 0.030), syntheticResult(200, 0.0301),
		syntheticResult(200, 0.0299), syntheticResult(200, 0.0302), syntheticResult(200, 0.0298),
	}
	comps := CompareRuns(regressed, loaded, 0.05)
	if len(comps) == 0 {
		t.Fatal("no comparisons produced")
	}
	var p99Flagged bool
	for _, c := range comps {
		if c.Metric == "p99_ms" {
			p99Flagged = c.Significant && c.DeltaPct > 100
		}
	}
	if !p99Flagged {
		t.Errorf("3x P99 regression not flagged: %+v", comps)
	}

	var md strings.Builder
	if err := WriteRunMarkdown(&md, "direct-serve", "const:200", regressed, comps); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Load report: direct-serve", "Versus baseline", "| p99_ms |"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("run Markdown missing %q", want)
		}
	}
}

func TestZipfTenants(t *testing.T) {
	tenants := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	gen := ZipfTenants(tenants, oneRequest)
	counts := map[string]int{}
	for i := int64(0); i < 4000; i++ {
		counts[gen(i).Tenant]++
	}
	if len(counts) != len(tenants) {
		t.Fatalf("only %d of %d tenants hit", len(counts), len(tenants))
	}
	// Zipf skew: rank 0 clearly hotter than rank 7.
	if counts["t0"] <= 2*counts["t7"] {
		t.Errorf("no skew: t0=%d t7=%d", counts["t0"], counts["t7"])
	}
	// Deterministic in i.
	if gen(42).Tenant != gen(42).Tenant {
		t.Error("ZipfTenants not deterministic")
	}
}
