package loadgen

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// fabricate builds a stable window series for gate tests.
func fabricate(n int, p99 float64, heap uint64) []WindowStats {
	ws := make([]WindowStats, n)
	for i := range ws {
		ws[i] = WindowStats{
			Index: i, StartS: float64(i), OK: 1000, QPS: 1000,
			P50MS: p99 / 2, P99MS: p99, HeapBytes: heap,
		}
	}
	return ws
}

func gateByName(gs []GateResult, name string) GateResult {
	for _, g := range gs {
		if g.Name == name {
			return g
		}
	}
	return GateResult{Name: "missing:" + name}
}

func TestSoakGatesPass(t *testing.T) {
	cfg := SoakConfig{WarmupWindows: 3, P99Ratio: 2, HeapSlope: 128 << 10}
	cut, gates := soakGates(fabricate(20, 5.0, 64<<20), cfg)
	if cut != 3 {
		t.Errorf("warmup cut = %d, want 3", cut)
	}
	for _, g := range gates {
		if !g.Passed {
			t.Errorf("stable series failed gate %s: %+v", g.Name, g)
		}
	}
}

func TestSoakGateCliff(t *testing.T) {
	ws := fabricate(20, 5.0, 64<<20)
	ws[12].P99MS = 25 // a 5x excursion in one window
	ws[12].Event = "model swap"
	_, gates := soakGates(ws, SoakConfig{WarmupWindows: 3, P99Ratio: 2, HeapSlope: 128 << 10})
	g := gateByName(gates, "p99_ratio")
	if g.Passed {
		t.Errorf("5x P99 cliff passed the no-cliff gate: %+v", g)
	}
	if g.Value < 4.9 || g.Value > 5.1 {
		t.Errorf("cliff ratio = %g, want ~5", g.Value)
	}
	// Warmup windows are excluded: a cliff before the cut must not fail.
	ws2 := fabricate(20, 5.0, 64<<20)
	ws2[1].P99MS = 100
	_, gates2 := soakGates(ws2, SoakConfig{WarmupWindows: 3, P99Ratio: 2, HeapSlope: 128 << 10})
	if g := gateByName(gates2, "p99_ratio"); !g.Passed {
		t.Errorf("warmup-window cliff failed the gate: %+v", g)
	}
}

func TestSoakGateAmbientOutlierExcused(t *testing.T) {
	// One blown-out window far from any event is host noise, not a cliff:
	// the gate excuses exactly one such outlier, spells it out in the
	// detail, and judges the ratio on the next-worst window.
	ws := fabricate(20, 5.0, 64<<20)
	ws[6].Event = "model swap"
	ws[15].P99MS = 80
	_, gates := soakGates(ws, SoakConfig{WarmupWindows: 3, P99Ratio: 2, HeapSlope: 128 << 10})
	g := gateByName(gates, "p99_ratio")
	if !g.Passed {
		t.Errorf("lone ambient outlier failed the no-cliff gate: %+v", g)
	}
	if !strings.Contains(g.Detail, "excused as ambient") {
		t.Errorf("excusal not surfaced in detail: %q", g.Detail)
	}

	// The same excursion adjacent to the event is a cliff, not noise.
	ws2 := fabricate(20, 5.0, 64<<20)
	ws2[6].Event = "model swap"
	ws2[7].P99MS = 80
	_, gates2 := soakGates(ws2, SoakConfig{WarmupWindows: 3, P99Ratio: 2, HeapSlope: 128 << 10})
	if g := gateByName(gates2, "p99_ratio"); g.Passed {
		t.Errorf("event-adjacent excursion passed the no-cliff gate: %+v", g)
	}

	// Two outliers are a pattern, not a scheduling accident.
	ws3 := fabricate(20, 5.0, 64<<20)
	ws3[6].Event = "model swap"
	ws3[12].P99MS = 80
	ws3[16].P99MS = 40
	_, gates3 := soakGates(ws3, SoakConfig{WarmupWindows: 3, P99Ratio: 2, HeapSlope: 128 << 10})
	if g := gateByName(gates3, "p99_ratio"); g.Passed {
		t.Errorf("repeated outliers passed the no-cliff gate: %+v", g)
	}
}

func TestSoakGateHeapCreep(t *testing.T) {
	ws := fabricate(20, 5.0, 64<<20)
	for i := range ws {
		// 1 MiB/window leak — far above the 128 KiB/s limit.
		ws[i].HeapBytes = 64<<20 + uint64(i)<<20
	}
	_, gates := soakGates(ws, SoakConfig{WarmupWindows: 3, P99Ratio: 2, HeapSlope: 128 << 10})
	g := gateByName(gates, "heap_slope")
	if g.Passed {
		t.Errorf("1 MiB/s heap creep passed the no-creep gate: %+v", g)
	}
	// A shrinking heap passes trivially.
	for i := range ws {
		ws[i].HeapBytes = 64<<20 - uint64(i)<<18
	}
	_, gates = soakGates(ws, SoakConfig{WarmupWindows: 3, P99Ratio: 2, HeapSlope: 128 << 10})
	if g := gateByName(gates, "heap_slope"); !g.Passed {
		t.Errorf("shrinking heap failed the no-creep gate: %+v", g)
	}
}

func TestSoakGateErrors(t *testing.T) {
	ws := fabricate(20, 5.0, 64<<20)
	ws[10].Errors = 2
	_, gates := soakGates(ws, SoakConfig{WarmupWindows: 3, P99Ratio: 2, HeapSlope: 128 << 10})
	if g := gateByName(gates, "errors"); g.Passed {
		t.Errorf("transport errors passed the no-failure gate: %+v", g)
	}
}

// TestSoakEndToEnd runs a real (short) soak against an in-process handler
// with one mid-run event and checks the plumbing: windows accumulate,
// the event is attributed, counters reconcile, gates evaluate.
func TestSoakEndToEnd(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"cost":1}`))
	})
	fired := false
	res := Soak(SoakConfig{
		Target:     &HandlerTarget{Handler: h},
		Schedule:   Constant{QPS: 400},
		Duration:   1500 * time.Millisecond,
		NewRequest: oneRequest,
		Window:     200 * time.Millisecond,
		Events: []SoakEvent{{
			After: 700 * time.Millisecond,
			Name:  "probe",
			Do:    func() error { fired = true; return nil },
		}},
		WarmupWindows: 2,
	})
	if len(res.Windows) < 5 {
		t.Fatalf("only %d windows for a 1.5s soak at 200ms windows", len(res.Windows))
	}
	if !fired {
		t.Error("soak event did not fire")
	}
	var annotated bool
	var okSum int64
	for _, w := range res.Windows {
		okSum += w.OK
		if strings.Contains(w.Event, "probe") {
			annotated = true
		}
	}
	if !annotated {
		t.Error("event not attributed to any window")
	}
	if okSum != res.Run.OK {
		t.Errorf("windowed OK sum %d != run OK %d — snapshot subtraction lost requests", okSum, res.Run.OK)
	}
	if len(res.Gates) != 3 {
		t.Errorf("want 3 gates, got %+v", res.Gates)
	}
	if g := gateByName(res.Gates, "errors"); !g.Passed {
		t.Errorf("error-free soak failed the errors gate: %+v", g)
	}
}
