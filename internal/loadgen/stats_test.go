package loadgen

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 2, 1, 3, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("Summarize: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %g, want sqrt(2.5)", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty Summarize: %+v", z)
	}
}

func TestMannWhitneySeparated(t *testing.T) {
	a := []float64{1.0, 1.1, 1.2, 1.3, 1.4, 1.0, 1.2, 1.1}
	b := []float64{5.0, 5.1, 5.2, 5.3, 5.4, 5.0, 5.2, 5.1}
	r := MannWhitney(a, b)
	if r.P >= 0.01 {
		t.Errorf("fully separated sets: p = %g, want < 0.01", r.P)
	}
	if r.RankBiserial != -1 {
		t.Errorf("every a below every b: rank-biserial = %g, want -1", r.RankBiserial)
	}
	// Symmetric the other way.
	if r2 := MannWhitney(b, a); r2.RankBiserial != 1 {
		t.Errorf("reversed: rank-biserial = %g, want +1", r2.RankBiserial)
	}
}

func TestMannWhitneyIdentical(t *testing.T) {
	a := []float64{2, 3, 4, 5, 6, 7, 8, 9}
	r := MannWhitney(a, a)
	if r.P < 0.9 {
		t.Errorf("identical sets: p = %g, want ~1", r.P)
	}
	if math.Abs(r.RankBiserial) > 1e-9 {
		t.Errorf("identical sets: rank-biserial = %g, want 0", r.RankBiserial)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// Heavily tied data must not blow up the variance term.
	a := []float64{1, 1, 1, 2, 2, 2}
	b := []float64{1, 1, 2, 2, 2, 2}
	r := MannWhitney(a, b)
	if math.IsNaN(r.P) || r.P < 0 || r.P > 1 {
		t.Errorf("tied data: p = %g", r.P)
	}
	if r.P < 0.3 {
		t.Errorf("near-identical tied sets: p = %g, want large", r.P)
	}
}

func TestCohensD(t *testing.T) {
	a := []float64{10, 11, 12, 13, 14}
	b := []float64{10, 11, 12, 13, 14}
	if d := CohensD(a, b); d != 0 {
		t.Errorf("identical sets: d = %g", d)
	}
	c := []float64{20, 21, 22, 23, 24}
	d := CohensD(c, a)
	// Means differ by 10, pooled std = sqrt(2.5) → d ≈ 6.32.
	if math.Abs(d-10/math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("d = %g, want %g", d, 10/math.Sqrt(2.5))
	}
	if EffectLabel(d) != "large" || EffectLabel(0.05) != "negligible" ||
		EffectLabel(0.3) != "small" || EffectLabel(-0.6) != "medium" {
		t.Error("EffectLabel thresholds wrong")
	}
}

func TestCompare(t *testing.T) {
	base := []float64{10.0, 10.2, 9.9, 10.1, 10.0, 10.1, 9.8, 10.2}
	regressed := []float64{13.0, 13.2, 12.9, 13.1, 13.0, 13.1, 12.8, 13.2}
	c := Compare("p99_ms", regressed, base, 0.05)
	if !c.Significant {
		t.Errorf("30%% regression not flagged: p=%g effect=%s", c.MW.P, c.Effect)
	}
	if c.DeltaPct < 25 || c.DeltaPct > 35 {
		t.Errorf("DeltaPct = %g, want ~30", c.DeltaPct)
	}
	same := Compare("p99_ms", base, base, 0.05)
	if same.Significant {
		t.Errorf("identical sets flagged significant: p=%g effect=%s", same.MW.P, same.Effect)
	}
}

func TestWarmupCut(t *testing.T) {
	// 5 windows of cold-start throughput, then stable.
	series := []float64{100, 300, 500, 700, 850, 1000, 1010, 990, 1000, 1005, 995, 1000, 1002, 998, 1000}
	cut := WarmupCut(series, 5, 0.10)
	if cut < 4 || cut > 6 {
		t.Errorf("WarmupCut = %d, want ~5 (ramp ends at index 5)", cut)
	}
	// Already-stable series: no warmup to cut.
	flat := []float64{1000, 1001, 999, 1000, 1002, 998, 1000, 1001, 999, 1000}
	if cut := WarmupCut(flat, 5, 0.10); cut != 0 {
		t.Errorf("flat series WarmupCut = %d, want 0", cut)
	}
	// Never-stable series: conservative half cut.
	noisy := []float64{1, 1000, 2, 900, 3, 800, 4, 700, 5, 600, 6, 500}
	if cut := WarmupCut(noisy, 5, 0.10); cut != len(noisy)/2 {
		t.Errorf("unstable series WarmupCut = %d, want %d", cut, len(noisy)/2)
	}
}

func TestSlope(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{10, 12, 14, 16, 18}
	if s := Slope(xs, ys); math.Abs(s-2) > 1e-12 {
		t.Errorf("Slope = %g, want 2", s)
	}
	if s := Slope(xs, []float64{7, 7, 7, 7, 7}); s != 0 {
		t.Errorf("flat Slope = %g, want 0", s)
	}
	if s := Slope([]float64{1}, []float64{1}); s != 0 {
		t.Errorf("single point Slope = %g, want 0", s)
	}
}
