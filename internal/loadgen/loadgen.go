// Package loadgen is the statistically rigorous load-generation substrate
// for the DACE serving stack: an open-loop request generator, a statistics
// engine for multi-run comparisons, and a soak scenario runner with
// latency-cliff and memory-creep gates.
//
// The generator is open-loop: request arrival times are drawn from a target
// schedule (constant, ramp, sine, or replay) fixed before the run, never
// from response completions. A closed-loop harness — N clients in a
// request/response loop, like cmd/bench's serve scenarios — silently stops
// *sending* while the server is slow, so every stall removes exactly the
// samples that would have shown it: the coordinated-omission trap. Here the
// clock keeps ticking; each request's latency is measured from its
// *intended* start per the schedule to its completion, so time a request
// spent waiting behind a saturated server is charged to the server, not
// hidden by the harness.
//
// In-flight concurrency is bounded. An arrival that finds the window full
// is dropped and counted — an explicit load-shedding event in the report —
// rather than blocking the arrival clock (which would reintroduce
// coordination). Timeouts and 503 backpressure responses are likewise
// counted per class, never silently retried.
//
// Latencies are recorded into the telemetry package's lock-free log-linear
// histograms, the same structure the server's own metrics use, so windowed
// percentiles come from snapshot subtraction with no per-request
// allocation on the recording path.
package loadgen

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// Request is one generated request. Bodies are owned by the workload
// source and must not be mutated by the target.
type Request struct {
	Body        []byte
	ContentType string
	Tenant      string // sent as X-DACE-Tenant when non-empty
}

// Response is a target's report of one completed request. Status is the
// HTTP status code (0 on transport error). RetryAfter carries a parsed
// Retry-After header on backpressure responses.
type Response struct {
	Status     int
	RetryAfter time.Duration
}

// Target issues one request and reports its outcome. Implementations must
// be safe for MaxInflight concurrent callers. A transport-level failure
// (connection refused, timeout) returns err; an HTTP error status is not
// an error — it comes back in Response for per-class accounting.
type Target interface {
	Do(req *Request) (Response, error)
}

// HTTPTarget drives a live daced or gateway over real sockets.
type HTTPTarget struct {
	URL    *url.URL // full endpoint URL, e.g. http://host:8080/predict
	Client *http.Client
}

// NewHTTPTarget builds a target for the given endpoint with a transport
// sized for the expected concurrency and a per-request timeout.
func NewHTTPTarget(rawURL string, maxConns int, timeout time.Duration) (*HTTPTarget, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	if maxConns <= 0 {
		maxConns = 256
	}
	return &HTTPTarget{
		URL: u,
		Client: &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        maxConns,
				MaxIdleConnsPerHost: maxConns,
				DisableCompression:  true,
			},
		},
	}, nil
}

func (t *HTTPTarget) Do(req *Request) (Response, error) {
	hr := &http.Request{
		Method: http.MethodPost,
		URL:    t.URL,
		Header: http.Header{"Content-Type": []string{req.ContentType}, "User-Agent": nil},
		Body:   io.NopCloser(bytes.NewReader(req.Body)),
		GetBody: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(req.Body)), nil
		},
		ContentLength: int64(len(req.Body)),
	}
	if req.Tenant != "" {
		hr.Header["X-Dace-Tenant"] = []string{req.Tenant}
	}
	resp, err := t.Client.Do(hr)
	if err != nil {
		return Response{}, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return Response{Status: resp.StatusCode, RetryAfter: retryAfterOf(resp.Header, resp.StatusCode)}, nil
}

// HandlerTarget drives an http.Handler in-process: the full serving
// pipeline (decode, caches, batcher, model) without kernel sockets. This
// is what the coordinated-omission tests and the bench load scenarios use
// — the measured path is the server's, not the loopback stack's. The
// response body is discarded as it is written.
type HandlerTarget struct {
	Handler http.Handler
	Path    string // request path, default /predict
	Query   string // raw query string, optional
}

// discardResponse is a pooled, allocation-light ResponseWriter that counts
// bytes and captures the status plus the Retry-After header.
type discardResponse struct {
	header http.Header
	status int
	n      int
}

func (d *discardResponse) Header() http.Header { return d.header }
func (d *discardResponse) WriteHeader(code int) {
	if d.status == 0 {
		d.status = code
	}
}
func (d *discardResponse) Write(p []byte) (int, error) {
	if d.status == 0 {
		d.status = http.StatusOK
	}
	d.n += len(p)
	return len(p), nil
}

type handlerScratch struct {
	resp discardResponse
	body bytes.Reader
	req  http.Request
	url  url.URL
}

var handlerPool = sync.Pool{New: func() any { return new(handlerScratch) }}

func (t *HandlerTarget) Do(req *Request) (Response, error) {
	hs := handlerPool.Get().(*handlerScratch)
	defer handlerPool.Put(hs)
	path := t.Path
	if path == "" {
		path = "/predict"
	}
	hs.url = url.URL{Path: path, RawQuery: t.Query}
	hs.body.Reset(req.Body)
	hs.resp = discardResponse{header: make(http.Header, 4)}
	hs.req = http.Request{
		Method:        http.MethodPost,
		URL:           &hs.url,
		Header:        http.Header{"Content-Type": []string{req.ContentType}},
		Body:          io.NopCloser(&hs.body),
		ContentLength: int64(len(req.Body)),
		RemoteAddr:    "loadgen",
	}
	if req.Tenant != "" {
		hs.req.Header["X-Dace-Tenant"] = []string{req.Tenant}
	}
	t.Handler.ServeHTTP(&hs.resp, &hs.req)
	status := hs.resp.status
	if status == 0 {
		status = http.StatusOK
	}
	return Response{Status: status, RetryAfter: retryAfterOf(hs.resp.header, status)}, nil
}

// retryAfterOf parses a delay-seconds Retry-After from a backpressure
// response (503 or 429); anything else is 0.
func retryAfterOf(h http.Header, status int) time.Duration {
	if status != http.StatusServiceUnavailable && status != http.StatusTooManyRequests {
		return 0
	}
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// isTimeout classifies a transport error as a timeout for the runner's
// drop/timeout accounting.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
