package loadgen

import (
	"math"
	"testing"
	"time"
)

// arrivalsWithin counts how many scheduled arrivals land inside d.
func arrivalsWithin(s Schedule, d time.Duration) int64 {
	var i int64
	for ; s.At(i) <= d; i++ {
	}
	return i
}

func TestConstantSchedule(t *testing.T) {
	c := Constant{QPS: 1000}
	if got := c.At(100); got != 100*time.Millisecond {
		t.Errorf("At(100) = %s, want 100ms", got)
	}
	if n := arrivalsWithin(c, time.Second); n != 1001 {
		t.Errorf("arrivals in 1s at 1000 qps = %d, want 1001", n)
	}
}

func TestRampSchedule(t *testing.T) {
	r := Ramp{From: 100, To: 900, Duration: 2 * time.Second}
	// Average rate is 500 qps, so ~1000 arrivals over the 2s sweep.
	n := arrivalsWithin(r, 2*time.Second)
	if n < 950 || n > 1050 {
		t.Errorf("ramp 100-900 over 2s: %d arrivals, want ~1000", n)
	}
	// Monotone non-decreasing arrival times.
	prev := time.Duration(-1)
	for i := int64(0); i < n; i++ {
		at := r.At(i)
		if at < prev {
			t.Fatalf("At(%d)=%s < At(%d)=%s", i, at, i-1, prev)
		}
		prev = at
	}
	// The early half must be sparser than the late half: the midpoint
	// arrival falls past the midpoint in time.
	if mid := r.At(n / 2); mid <= time.Second {
		t.Errorf("ramp midpoint arrival at %s, want after 1s (rate grows over time)", mid)
	}
	// Degenerate flat ramp behaves like a constant schedule.
	flat := Ramp{From: 250, To: 250, Duration: time.Second}
	if got, want := flat.At(250), time.Second; got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("flat ramp At(250) = %s, want ~1s", got)
	}
}

func TestSineSchedule(t *testing.T) {
	s := Sine{Base: 500, Amp: 300, Period: time.Second}
	// Over whole periods the modulation integrates to zero: ~500/s.
	n := arrivalsWithin(s, 2*time.Second)
	if n < 950 || n > 1050 {
		t.Errorf("sine base 500 over 2 periods: %d arrivals, want ~1000", n)
	}
	prev := time.Duration(-1)
	for i := int64(0); i < n; i++ {
		at := s.At(i)
		if at < prev {
			t.Fatalf("At(%d)=%s < previous %s", i, at, prev)
		}
		prev = at
	}
	// First quarter-period runs above base rate: more than 125 arrivals in
	// the first 250ms.
	if q := arrivalsWithin(s, 250*time.Millisecond); q <= 130 {
		t.Errorf("first quarter period has %d arrivals, want >130 (rate peaks at 800 qps)", q)
	}
}

func TestReplaySchedule(t *testing.T) {
	r := Replay{
		Offsets: []time.Duration{0, 10 * time.Millisecond, 15 * time.Millisecond, 100 * time.Millisecond},
		Span:    200 * time.Millisecond,
	}
	if got := r.At(1); got != 10*time.Millisecond {
		t.Errorf("At(1) = %s", got)
	}
	// Wrap: arrival 5 is offsets[1] shifted by one span.
	if got, want := r.At(5), 210*time.Millisecond; got != want {
		t.Errorf("At(5) = %s, want %s", got, want)
	}
	if got := r.Rate(); math.Abs(got-20) > 1e-9 {
		t.Errorf("Rate() = %g, want 20 (4 arrivals / 200ms span)", got)
	}
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		spec string
		want string // fmt.Sprintf("%T")
	}{
		{"const:250", "loadgen.Constant"},
		{"800", "loadgen.Constant"}, // bare-number shorthand
		{"ramp:100-500", "loadgen.Ramp"},
		{"sine:400:200:30s", "loadgen.Sine"},
	}
	for _, c := range cases {
		s, err := ParseSchedule(c.spec, time.Minute)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", c.spec, err)
			continue
		}
		if got := typeName(s); got != c.want {
			t.Errorf("ParseSchedule(%q) = %s, want %s", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"", "const:-5", "const:x", "ramp:100", "ramp:0-100", "sine:100:200:1s", "sine:100:50", "burst:9"} {
		if _, err := ParseSchedule(bad, time.Minute); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
	// Ramp without a run duration cannot define its sweep.
	if _, err := ParseSchedule("ramp:10-20", 0); err == nil {
		t.Error("ramp with zero run duration succeeded, want error")
	}
}

func typeName(v any) string {
	switch v.(type) {
	case Constant:
		return "loadgen.Constant"
	case Ramp:
		return "loadgen.Ramp"
	case Sine:
		return "loadgen.Sine"
	case Replay:
		return "loadgen.Replay"
	}
	return "?"
}
