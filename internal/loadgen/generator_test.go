package loadgen

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// slowTarget is a capacity-1 server with a fixed service time: the
// textbook coordinated-omission victim. A closed-loop client measures
// ~serviceTime per request because it politely waits its turn before
// *starting* the clock; an open-loop runner above 1/serviceTime QPS sees
// the queue it actually built.
type slowTarget struct {
	mu      sync.Mutex
	service time.Duration
}

func (s *slowTarget) Do(req *Request) (Response, error) {
	s.mu.Lock()
	time.Sleep(s.service)
	s.mu.Unlock()
	return Response{Status: http.StatusOK}, nil
}

func oneRequest(i int64) *Request {
	return &Request{Body: []byte(`{}`), ContentType: "application/json"}
}

// TestCoordinatedOmission is the acceptance test for the open-loop
// design: at an offered rate above saturation, the open-loop P99
// (intended-start→completion) must be at least 5x the closed-loop P99 on
// the same saturated target, because the closed-loop harness suppresses
// exactly the samples that would have recorded the queueing delay.
func TestCoordinatedOmission(t *testing.T) {
	const service = 2 * time.Millisecond // capacity ~500 qps

	closed := ClosedLoop(&slowTarget{service: service}, oneRequest, 2, 300)
	if closed.OK != 300 {
		t.Fatalf("closed loop: ok=%d want 300", closed.OK)
	}
	closedP99 := closed.Hist.Quantile(0.99)

	open := Run(Options{
		Target:      &slowTarget{service: service},
		Schedule:    Constant{QPS: 2000}, // 4x saturation
		Duration:    1200 * time.Millisecond,
		NewRequest:  oneRequest,
		MaxInflight: 512,
	})
	if open.OK == 0 {
		t.Fatalf("open loop completed nothing: %+v", open.Counts)
	}
	openP99 := open.Hist.Quantile(0.99)

	t.Logf("closed P99 %.1fms (ok=%d), open P99 %.1fms (offered=%d ok=%d dropped=%d hwm=%d)",
		closedP99*1e3, closed.OK, openP99*1e3, open.Offered, open.OK, open.Dropped, open.InflightHWM)

	// The closed loop should report roughly the service time; generous
	// upper bound for noisy CI machines.
	if closedP99 > 20*service.Seconds() {
		t.Errorf("closed-loop P99 %.1fms implausibly high for %.1fms service time",
			closedP99*1e3, service.Seconds()*1e3)
	}
	if openP99 < 5*closedP99 {
		t.Errorf("open-loop P99 %.3fms < 5x closed-loop P99 %.3fms: coordinated omission not surfaced",
			openP99*1e3, closedP99*1e3)
	}
	// Above saturation with a bounded window the runner must shed load
	// rather than stall the arrival clock.
	if open.Dropped == 0 {
		t.Errorf("expected shed arrivals at 4x saturation with MaxInflight=512, got none")
	}
	if got := open.Sent + open.Dropped; got != open.Offered {
		t.Errorf("accounting: sent %d + dropped %d != offered %d", open.Sent, open.Dropped, open.Offered)
	}
}

// fastTarget completes instantly with a fixed status and optional
// Retry-After.
type fastTarget struct {
	status     int
	retryAfter time.Duration
}

func (f *fastTarget) Do(req *Request) (Response, error) {
	return Response{Status: f.status, RetryAfter: f.retryAfter}, nil
}

func TestOutcomeClassification(t *testing.T) {
	run := func(status int) Result {
		return Run(Options{
			Target:     &fastTarget{status: status},
			Schedule:   Constant{QPS: 1000},
			Duration:   100 * time.Millisecond,
			NewRequest: oneRequest,
		})
	}
	if r := run(http.StatusOK); r.OK == 0 || r.Backpressured != 0 || r.Errors != 0 || int64(r.Hist.Count) != r.OK {
		t.Errorf("200s: %+v hist=%d", r.Counts, r.Hist.Count)
	}
	if r := run(http.StatusServiceUnavailable); r.Backpressured == 0 || r.OK != 0 || r.Hist.Count != 0 {
		t.Errorf("503s must count as backpressure and stay out of the latency histogram: %+v hist=%d",
			r.Counts, r.Hist.Count)
	}
	if r := run(http.StatusInternalServerError); r.Errors == 0 || r.OK != 0 {
		t.Errorf("500s must count as errors: %+v", r.Counts)
	}
}

func TestOfferedMatchesSchedule(t *testing.T) {
	r := Run(Options{
		Target:     &fastTarget{status: 200},
		Schedule:   Constant{QPS: 500},
		Duration:   time.Second,
		NewRequest: oneRequest,
	})
	// Arrival count is a property of the schedule alone: 501 arrivals have
	// At(i) <= 1s at 500 qps (i=0..500).
	if r.Offered != 501 {
		t.Errorf("offered %d, want 501 — the schedule, not the server, owns the arrival count", r.Offered)
	}
}

func TestHandlerTarget(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Dace-Tenant") == "tenant-7" && r.URL.Path == "/predict" {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"cost":1}`))
	})
	ht := &HandlerTarget{Handler: h}

	resp, err := ht.Do(&Request{Body: []byte(`{}`), ContentType: "application/json"})
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("plain request: %v status=%d", err, resp.Status)
	}
	resp, err = ht.Do(&Request{Body: []byte(`{}`), ContentType: "application/json", Tenant: "tenant-7"})
	if err != nil || resp.Status != http.StatusServiceUnavailable || resp.RetryAfter != 3*time.Second {
		t.Fatalf("tenant request: %v status=%d retryAfter=%s", err, resp.Status, resp.RetryAfter)
	}
}

func TestHTTPTarget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/predict" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	ht, err := NewHTTPTarget(srv.URL+"/predict", 8, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ht.Do(&Request{Body: []byte(`{}`), ContentType: "application/json"})
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("Do: %v status=%d", err, resp.Status)
	}
}
