package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Report emission: CSV for machines (one row per run, or per soak
// window), Markdown for humans (summary tables, comparison verdicts, gate
// results). The same numbers flow to both — the Markdown is a rendering
// of the CSV, never a different computation.

// RunMetrics extracts the per-run metric series a comparison consumes:
// one value per run, keyed by metric name. Latency quantiles come from
// each run's histogram (milliseconds); throughput from the counters.
func RunMetrics(runs []Result) map[string][]float64 {
	m := map[string][]float64{}
	add := func(k string, v float64) { m[k] = append(m[k], v) }
	for _, r := range runs {
		s := SummarizeSnapshot(r.Hist)
		add("mean_ms", s.Mean)
		add("p50_ms", s.P50)
		add("p95_ms", s.P95)
		add("p99_ms", s.P99)
		add("p999_ms", s.P999)
		add("achieved_qps", r.AchievedQPS)
	}
	return m
}

// Baseline is a committed reference point: the per-run metric series of a
// past run set, stored as JSON so a later run can be tested against it
// with Mann-Whitney + effect size rather than eyeballed.
type Baseline struct {
	Name     string               `json:"name"`
	Schedule string               `json:"schedule"`
	SavedAt  string               `json:"saved_at,omitempty"`
	Metrics  map[string][]float64 `json:"metrics"`
}

// SaveBaseline writes the run set's metric series to path.
func SaveBaseline(path, name, schedule string, runs []Result, savedAt string) error {
	b := Baseline{Name: name, Schedule: schedule, SavedAt: savedAt, Metrics: RunMetrics(runs)}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline written by SaveBaseline.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	err = json.Unmarshal(data, &b)
	return b, err
}

// CompareRuns tests a current run set against a baseline across every
// metric both sides have, in stable order.
func CompareRuns(runs []Result, base Baseline, alpha float64) []Comparison {
	cur := RunMetrics(runs)
	keys := make([]string, 0, len(cur))
	for k := range cur {
		if len(base.Metrics[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Comparison, 0, len(keys))
	for _, k := range keys {
		out = append(out, Compare(k, cur[k], base.Metrics[k], alpha))
	}
	return out
}

// WriteRunCSV emits one row per run.
func WriteRunCSV(w io.Writer, runs []Result) error {
	if _, err := fmt.Fprintln(w, "run,offered,sent,ok,backpressured,dropped,timeouts,errors,inflight_hwm,elapsed_s,offered_qps,achieved_qps,mean_ms,p50_ms,p95_ms,p99_ms,p999_ms"); err != nil {
		return err
	}
	for i, r := range runs {
		s := SummarizeSnapshot(r.Hist)
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.1f,%.1f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			i, r.Offered, r.Sent, r.OK, r.Backpressured, r.Dropped, r.Timeouts, r.Errors, r.InflightHWM,
			r.Elapsed.Seconds(), r.OfferedQPS, r.AchievedQPS,
			s.Mean, s.P50, s.P95, s.P99, s.P999); err != nil {
			return err
		}
	}
	return nil
}

// WriteSoakCSV emits one row per soak window.
func WriteSoakCSV(w io.Writer, s SoakResult) error {
	if _, err := fmt.Fprintln(w, "window,start_s,offered,ok,backpressured,dropped,timeouts,errors,qps,p50_ms,p99_ms,heap_bytes,alloc_per_ok,event"); err != nil {
		return err
	}
	for _, win := range s.Windows {
		if _, err := fmt.Fprintf(w, "%d,%.1f,%d,%d,%d,%d,%d,%d,%.1f,%.3f,%.3f,%d,%.0f,%q\n",
			win.Index, win.StartS, win.Offered, win.OK, win.Backpressured, win.Dropped,
			win.Timeouts, win.Errors, win.QPS, win.P50MS, win.P99MS, win.HeapBytes,
			win.AllocPerOK, win.Event); err != nil {
			return err
		}
	}
	return nil
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// WriteRunMarkdown renders a run-set report: the per-run summary, the
// aggregate dispersion, and — when a baseline is supplied — the
// statistical comparison table.
func WriteRunMarkdown(w io.Writer, name, schedule string, runs []Result, comps []Comparison) error {
	fmt.Fprintf(w, "## Load report: %s\n\n", name)
	fmt.Fprintf(w, "Schedule `%s`, %d run(s).\n\n", schedule, len(runs))
	fmt.Fprintln(w, "| run | offered qps | achieved qps | ok | backpressured | dropped | err+timeout | p50 ms | p99 ms | p99.9 ms |")
	fmt.Fprintln(w, "|----:|------------:|-------------:|---:|--------------:|--------:|------------:|-------:|-------:|---------:|")
	for i, r := range runs {
		s := SummarizeSnapshot(r.Hist)
		fmt.Fprintf(w, "| %d | %.0f | %.0f | %d | %d | %d | %d | %.3f | %.3f | %.3f |\n",
			i, r.OfferedQPS, r.AchievedQPS, r.OK, r.Backpressured, r.Dropped,
			r.Errors+r.Timeouts, s.P50, s.P99, s.P999)
	}
	fmt.Fprintln(w)

	if len(runs) > 1 {
		m := RunMetrics(runs)
		fmt.Fprintln(w, "Across runs:")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "| metric | mean | min | max | CV |")
		fmt.Fprintln(w, "|--------|-----:|----:|----:|---:|")
		for _, k := range []string{"p50_ms", "p99_ms", "p999_ms", "achieved_qps"} {
			s := Summarize(m[k])
			fmt.Fprintf(w, "| %s | %.3f | %.3f | %.3f | %.1f%% |\n", k, s.Mean, s.Min, s.Max, s.CV*100)
		}
		fmt.Fprintln(w)
	}

	if len(comps) > 0 {
		fmt.Fprintln(w, "Versus baseline (Mann-Whitney U, two-sided; significant = p < α and a non-negligible effect):")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "| metric | current mean | baseline mean | Δ% | p | Cohen's d | effect | significant |")
		fmt.Fprintln(w, "|--------|-------------:|--------------:|---:|--:|----------:|--------|-------------|")
		for _, c := range comps {
			fmt.Fprintf(w, "| %s | %.3f | %.3f | %+.1f%% | %.3f | %.2f | %s | %v |\n",
				c.Metric, c.Current.Mean, c.Baseline.Mean, c.DeltaPct, c.MW.P, c.CohensD, c.Effect, c.Significant)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteSoakMarkdown renders a soak report: the run totals, the gate
// verdicts, the event timeline, and the windowed series.
func WriteSoakMarkdown(w io.Writer, name string, s SoakResult) error {
	fmt.Fprintf(w, "## Soak report: %s — %s\n\n", name, passFail(s.Passed))
	r := s.Run
	agg := SummarizeSnapshot(r.Hist)
	fmt.Fprintf(w, "%.1fs, offered %d (%.0f qps), ok %d (%.0f qps), backpressured %d, dropped %d, timeouts %d, errors %d, in-flight HWM %d.\n",
		r.Elapsed.Seconds(), r.Offered, r.OfferedQPS, r.OK, r.AchievedQPS,
		r.Backpressured, r.Dropped, r.Timeouts, r.Errors, r.InflightHWM)
	fmt.Fprintf(w, "Aggregate latency (intended-start→completion): p50 %.3fms, p99 %.3fms, p99.9 %.3fms. %d window(s), first %d excluded as warmup.\n\n",
		agg.P50, agg.P99, agg.P999, len(s.Windows), s.WarmupCut)

	fmt.Fprintln(w, "| gate | value | limit | verdict | detail |")
	fmt.Fprintln(w, "|------|------:|------:|---------|--------|")
	for _, g := range s.Gates {
		fmt.Fprintf(w, "| %s | %.2f | %.2f | %s | %s |\n", g.Name, g.Value, g.Limit, passFail(g.Passed), g.Detail)
	}
	fmt.Fprintln(w)

	var events []string
	for _, win := range s.Windows {
		if win.Event != "" {
			events = append(events, fmt.Sprintf("- w%03d: %s", win.Index, win.Event))
		}
	}
	if len(events) > 0 {
		fmt.Fprintln(w, "Events:")
		fmt.Fprintln(w)
		for _, e := range events {
			fmt.Fprintln(w, e)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "| w | qps | p50 ms | p99 ms | heap MB | bp | drop | err | event |")
	fmt.Fprintln(w, "|--:|----:|-------:|-------:|--------:|---:|-----:|----:|-------|")
	for _, win := range s.Windows {
		marker := ""
		if win.Index < s.WarmupCut {
			marker = " (warmup)"
		}
		fmt.Fprintf(w, "| %d%s | %.0f | %.3f | %.3f | %.1f | %d | %d | %d | %s |\n",
			win.Index, marker, win.QPS, win.P50MS, win.P99MS, float64(win.HeapBytes)/(1<<20),
			win.Backpressured, win.Dropped, win.Errors+win.Timeouts, win.Event)
	}
	fmt.Fprintln(w)
	return nil
}

// ZipfTenants builds a NewRequest wrapper that assigns each request a
// tenant drawn from a Zipf-like distribution over `tenants` (rank-1/s
// weights, s=1.1), the skew real multi-tenant serving sees: a few hot
// databases and a long tail. Deterministic in i, so runs are repeatable.
func ZipfTenants(tenants []string, inner func(i int64) *Request) func(i int64) *Request {
	if len(tenants) == 0 {
		return inner
	}
	// Precompute the cumulative rank-weight table once.
	cum := make([]float64, len(tenants))
	total := 0.0
	for i := range tenants {
		total += 1 / math.Pow(float64(i+1), 1.1)
		cum[i] = total
	}
	return func(i int64) *Request {
		req := inner(i)
		// Low-discrepancy scan over (0,1): the golden-ratio sequence gives a
		// deterministic, well-mixed tenant stream without math/rand state.
		u := float64((uint64(i)*0x9E3779B97F4A7C15)>>11) / float64(1<<53) * total
		k := sort.SearchFloat64s(cum, u)
		if k >= len(tenants) {
			k = len(tenants) - 1
		}
		req.Tenant = tenants[k]
		return req
	}
}
