// Package executor is the simulated execution engine: the stand-in for
// running EXPLAIN ANALYZE on a real PostgreSQL instance. Given a physical
// plan, it computes every node's *true* output cardinality from the
// analytic data layer (internal/datagen) and converts the true work of each
// operator into milliseconds under a machine profile, with deterministic
// lognormal noise. The per-node inclusive latencies are the training labels
// for every model in this repository.
package executor

import (
	"fmt"
	"math"
	"strings"

	"dace/internal/datagen"
	"dace/internal/optimizer"
	"dace/internal/plan"
	"dace/internal/schema"
)

// Machine is a hardware/configuration profile. Its cost constants play the
// role PostgreSQL's cost constants play for the optimizer — except these
// are the *true* ones for this machine, and they are deliberately not equal
// to the optimizer's defaults. The mismatch, together with cardinality
// estimation error, is the EDQO the paper's model learns.
type Machine struct {
	Name string
	// Params are the machine's true per-operation costs (in abstract work
	// units, converted to milliseconds by MSPerUnit).
	Params optimizer.CostParams
	// MSPerUnit converts work units to milliseconds.
	MSPerUnit float64
	// ParallelSpeedup is the true speedup a Gather node achieves.
	ParallelSpeedup float64
	// NoiseSigma is the per-node lognormal latency noise.
	NoiseSigma float64
	// QueryNoiseSigma is a whole-query lognormal factor (system load).
	QueryNoiseSigma float64
}

// M1 returns the paper's training machine (Xeon E5-2650 v4 class): slower
// CPU, fast sequential storage.
func M1() Machine {
	return Machine{
		Name: "M1",
		Params: optimizer.CostParams{
			SeqPageCost:       0.7,
			RandomPageCost:    1.6,  // SSD: random IO far cheaper than the default 4.0 assumes
			CPUTupleCost:      0.02, // per-tuple CPU heavier than the model thinks
			CPUIndexTupleCost: 0.004,
			CPUOperatorCost:   0.006,
			RowWidth:          100,
			PageSize:          8192,
		},
		MSPerUnit:       0.021,
		ParallelSpeedup: 2.3,
		NoiseSigma:      0.12,
		QueryNoiseSigma: 0.06,
	}
}

// M2 returns the across-more machine (desktop i5-8500 class): ~40% faster
// CPU, slower storage, weaker parallelism. Same queries get systematically
// different latencies here, which is what DACE-LoRA adapts to.
func M2() Machine {
	return Machine{
		Name: "M2",
		Params: optimizer.CostParams{
			SeqPageCost:       1.5,
			RandomPageCost:    4.8,
			CPUTupleCost:      0.011,
			CPUIndexTupleCost: 0.003,
			CPUOperatorCost:   0.0032,
			RowWidth:          100,
			PageSize:          8192,
		},
		MSPerUnit:       0.016,
		ParallelSpeedup: 1.6,
		NoiseSigma:      0.14,
		QueryNoiseSigma: 0.08,
	}
}

// Executor labels plans for one database on one machine.
type Executor struct {
	DB      *schema.Database
	Oracle  *datagen.Oracle
	Machine Machine
}

// New builds an executor.
func New(db *schema.Database, m Machine) *Executor {
	return &Executor{DB: db, Oracle: datagen.NewOracle(db), Machine: m}
}

// Run simulates executing the plan: it fills ActualRows and ActualMS
// (inclusive sub-plan latency, as EXPLAIN ANALYZE reports) on every node
// and returns the root latency. queryID seeds the deterministic noise, so
// re-running the same query on the same machine reproduces the label.
func (e *Executor) Run(p *plan.Plan, queryID string) (float64, error) {
	if p.Database != e.DB.Name {
		return 0, fmt.Errorf("executor: plan for %q run against %q", p.Database, e.DB.Name)
	}
	loadFactor := math.Exp(e.Machine.QueryNoiseSigma * schema.HashNormal("load", e.Machine.Name, queryID))
	nodeIdx := 0
	_, total := e.walk(p.Root, queryID, loadFactor, &nodeIdx)
	return total, nil
}

// walk returns (true output rows, inclusive actual ms) for the subtree.
func (e *Executor) walk(n *plan.Node, queryID string, load float64, idx *int) (rows, ms float64) {
	myIdx := *idx
	*idx++

	var childRows []float64
	var childMS float64
	for _, c := range n.Children {
		r, m := e.walk(c, queryID, load, idx)
		childRows = append(childRows, r)
		childMS += m
	}

	rows = e.trueRows(n, childRows)
	work := e.work(n, rows, childRows)
	noise := math.Exp(e.Machine.NoiseSigma * schema.HashNormal("node", e.Machine.Name, queryID, fmt.Sprint(myIdx)))
	selfMS := work * e.Machine.MSPerUnit * noise * load

	if n.Type == plan.Gather {
		// Workers genuinely parallelize the subtree.
		childMS /= e.Machine.ParallelSpeedup
	}
	ms = childMS + selfMS
	n.ActualRows = rows
	n.ActualMS = ms
	return rows, ms
}

// trueRows computes the node's true output cardinality from its children's.
func (e *Executor) trueRows(n *plan.Node, childRows []float64) float64 {
	switch {
	case n.Type.IsScan():
		if n.Type == plan.BitmapHeapScan {
			return childRows[0] // the bitmap index scan already applied the filter
		}
		return e.Oracle.ScanRows(n.Meta.Table, n.Meta.Filters)
	case n.Type.IsJoin():
		fk, filtered := e.joinContext(n)
		sel := e.Oracle.JoinSelectivity(fk, filtered)
		return math.Max(1, childRows[0]*childRows[1]*sel)
	}
	in := childRows[0]
	switch n.Type {
	case plan.Aggregate:
		if n.Meta != nil && len(n.Meta.GroupCols) > 0 {
			return e.groupRows(n.Meta.GroupCols[0], in)
		}
		return 1
	case plan.GroupAggregate:
		return e.groupRows(n.Meta.GroupCols[0], in)
	case plan.Limit:
		if n.Meta != nil && n.Meta.Limit > 0 {
			return math.Min(float64(n.Meta.Limit), in)
		}
		return in
	default: // Hash, Sort, Materialize, Gather, Result pass rows through
		return in
	}
}

// groupRows is the true group count: the true NDV of the grouping column
// capped by the input cardinality.
func (e *Executor) groupRows(qualified string, in float64) float64 {
	tn, cn, ok := strings.Cut(qualified, ".")
	if !ok {
		return math.Max(1, in/2)
	}
	t := e.DB.Table(tn)
	if t == nil || t.Column(cn) == nil {
		return math.Max(1, in/2)
	}
	return math.Max(1, math.Min(float64(t.Column(cn).NDV), in))
}

// work computes the node's own true work in cost units, using the machine's
// true constants and true cardinalities — the same formulas the optimizer
// used with its believed constants and estimated cardinalities.
func (e *Executor) work(n *plan.Node, rows float64, childRows []float64) float64 {
	p := e.Machine.Params
	switch {
	case n.Type.IsScan():
		t := e.DB.Table(n.Meta.Table)
		tableRows := float64(t.Rows)
		if n.Type == plan.BitmapHeapScan {
			return p.ScanCost(n.Type, tableRows, rows, len(n.Meta.Filters))
		}
		return p.ScanCost(n.Type, tableRows, rows, len(n.Meta.Filters))
	case n.Type.IsJoin():
		return p.JoinCost(n.Type, childRows[0], childRows[1], rows)
	default:
		return p.UnaryCost(n.Type, childRows[0], rows)
	}
}

// joinContext resolves the foreign key a join node evaluates and the
// qualified filter columns in its subtree (which drive the deterministic
// filter/join-key correlation in the oracle).
func (e *Executor) joinContext(n *plan.Node) (schema.ForeignKey, []string) {
	lt, _, _ := strings.Cut(n.Meta.JoinLeft, ".")
	rt, _, _ := strings.Cut(n.Meta.JoinRight, ".")
	fk, ok := e.DB.FKBetween(lt, rt)
	if !ok {
		panic(fmt.Sprintf("executor: join %s=%s has no FK", n.Meta.JoinLeft, n.Meta.JoinRight))
	}
	var filtered []string
	var collect func(m *plan.Node)
	collect = func(m *plan.Node) {
		if m.Meta != nil && m.Meta.Table != "" {
			for _, f := range m.Meta.Filters {
				filtered = append(filtered, m.Meta.Table+"."+f.Column)
			}
		}
		for _, c := range m.Children {
			collect(c)
		}
	}
	collect(n)
	// Deduplicate + sort for stable hashing.
	seen := map[string]bool{}
	out := filtered[:0]
	for _, f := range filtered {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sortStrings(out)
	return fk, out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
