package executor

import (
	"math"
	"sort"
	"testing"

	"dace/internal/optimizer"
	"dace/internal/plan"
	"dace/internal/schema"
	"dace/internal/workload"
)

func labeledPlans(t *testing.T, db *schema.Database, n int, m Machine) []*plan.Plan {
	t.Helper()
	pl := optimizer.New(db)
	ex := New(db, m)
	var out []*plan.Plan
	for i, q := range workload.Complex(db, n, 21) {
		p, err := pl.Plan(q)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if _, err := ex.Run(p, q.ID); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		out = append(out, p)
	}
	return out
}

func TestRunLabelsEveryNode(t *testing.T) {
	for _, p := range labeledPlans(t, schema.IMDB(), 30, M1()) {
		for _, n := range p.DFS() {
			if n.ActualRows <= 0 {
				t.Fatalf("%s has actual rows %v", n.Type, n.ActualRows)
			}
			if n.ActualMS <= 0 {
				t.Fatalf("%s has actual ms %v", n.Type, n.ActualMS)
			}
		}
	}
}

func TestInclusiveLatencyMonotoneUpTree(t *testing.T) {
	for _, p := range labeledPlans(t, schema.IMDB(), 30, M1()) {
		var walk func(n *plan.Node)
		walk = func(n *plan.Node) {
			for _, c := range n.Children {
				// Gather genuinely speeds up its subtree; elsewhere a parent's
				// inclusive latency includes its children's.
				if n.Type != plan.Gather && c.ActualMS > n.ActualMS+1e-9 {
					t.Fatalf("child %s (%.3fms) exceeds parent %s (%.3fms)", c.Type, c.ActualMS, n.Type, n.ActualMS)
				}
				walk(c)
			}
		}
		walk(p.Root)
	}
}

func TestLabelsDeterministic(t *testing.T) {
	db := schema.IMDB()
	a := labeledPlans(t, db, 5, M1())
	b := labeledPlans(t, db, 5, M1())
	for i := range a {
		if a[i].Root.ActualMS != b[i].Root.ActualMS {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestMachinesDiffer(t *testing.T) {
	db := schema.IMDB()
	a := labeledPlans(t, db, 20, M1())
	b := labeledPlans(t, db, 20, M2())
	var ratios []float64
	for i := range a {
		ratios = append(ratios, b[i].Root.ActualMS/a[i].Root.ActualMS)
	}
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	if math.Abs(math.Log(med)) < 0.02 {
		t.Fatalf("M1 and M2 median latency ratio %v too similar; across-more shift missing", med)
	}
}

func TestEstimationErrorGrowsWithJoins(t *testing.T) {
	// The motivating observation (paper Fig. 4): cardinality error compounds
	// with plan depth, so optimizer cost becomes less reliable on big plans.
	db := schema.IMDB()
	pl := optimizer.New(db)
	ex := New(db, M1())
	errByJoins := map[int][]float64{}
	for _, q := range workload.Complex(db, 300, 99) {
		p, err := pl.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(p, q.ID); err != nil {
			t.Fatal(err)
		}
		joins := 0
		var worst float64 = 1
		for _, n := range p.DFS() {
			if n.Type.IsJoin() {
				joins++
				qe := math.Max(n.EstRows/n.ActualRows, n.ActualRows/n.EstRows)
				if qe > worst {
					worst = qe
				}
			}
		}
		errByJoins[joins] = append(errByJoins[joins], worst)
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += math.Log(x)
		}
		return s / float64(len(xs))
	}
	if len(errByJoins[1]) == 0 || len(errByJoins[3]) == 0 {
		t.Skip("workload did not produce both 1-join and 3-join queries")
	}
	if mean(errByJoins[3]) <= mean(errByJoins[1]) {
		t.Fatalf("cardinality error does not compound: 1-join %.3f vs 3-join %.3f",
			mean(errByJoins[1]), mean(errByJoins[3]))
	}
}

func TestOptimizerCostCorrelatesWithLatency(t *testing.T) {
	// EDQO must be a *correction* problem: est cost carries real signal
	// (rank correlation well above zero) but is far from perfect.
	db := schema.IMDB()
	plans := labeledPlans(t, db, 150, M1())
	var est, act []float64
	for _, p := range plans {
		est = append(est, math.Log(p.Root.EstCost))
		act = append(act, math.Log(p.Root.ActualMS))
	}
	r := spearman(est, act)
	if r < 0.5 {
		t.Fatalf("est cost vs latency Spearman %.3f too weak; labels unlearnable", r)
	}
	if r > 0.999 {
		t.Fatalf("est cost vs latency Spearman %.3f suspiciously perfect; no EDQO to learn", r)
	}
}

func TestGroupRowsFallbacks(t *testing.T) {
	db := schema.IMDB()
	ex := New(db, M1())
	if got := ex.groupRows("title.kind_id", 1000); got != 7 {
		t.Fatalf("groupRows = %v, want 7 (NDV cap)", got)
	}
	if got := ex.groupRows("title.kind_id", 3); got != 3 {
		t.Fatalf("groupRows = %v, want 3 (input cap)", got)
	}
	if got := ex.groupRows("garbage", 10); got <= 0 {
		t.Fatalf("groupRows fallback = %v", got)
	}
}

func TestRunRejectsWrongDatabase(t *testing.T) {
	db := schema.IMDB()
	other := schema.TPCH(1)
	pl := optimizer.New(db)
	q := workload.Complex(db, 1, 1)[0]
	p, err := pl.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(other, M1()).Run(p, q.ID); err == nil {
		t.Fatal("expected database mismatch error")
	}
}

func TestDataDriftChangesLatencies(t *testing.T) {
	// The Fig. 7 mechanism: the same workload costs more on a scaled-up DB.
	q := workload.Complex(schema.TPCH(1), 20, 77)
	lat := func(scale float64) float64 {
		db := schema.TPCH(scale)
		pl := optimizer.New(db)
		ex := New(db, M1())
		var total float64
		for _, query := range q {
			p, err := pl.Plan(query)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := ex.Run(p, query.ID)
			if err != nil {
				t.Fatal(err)
			}
			total += ms
		}
		return total
	}
	if l1, l10 := lat(1), lat(10); l10 < 2*l1 {
		t.Fatalf("10× data growth only changed total latency %v→%v", l1, l10)
	}
}

// spearman computes the Spearman rank correlation of two equal-length series.
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(len(ra))
	mb /= float64(len(rb))
	var num, da, db float64
	for i := range ra {
		num += (ra[i] - ma) * (rb[i] - mb)
		da += (ra[i] - ma) * (ra[i] - ma)
		db += (rb[i] - mb) * (rb[i] - mb)
	}
	return num / math.Sqrt(da*db)
}

func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	r := make([]float64, len(x))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}
