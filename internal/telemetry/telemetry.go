// Package telemetry is DACE's dependency-free instrumentation subsystem:
// atomic counters and gauges, lock-free sharded log-scale histograms, a
// process-wide Registry of named metric families, and a Prometheus
// text-exposition encoder.
//
// The design constraint is the same one the allocation-free hot path
// (DESIGN.md §7) lives under: instrumenting a code path must cost a handful
// of nanoseconds and zero allocations, because the serving layer's
// lightweight-estimator story collapses if observing it is expensive.
// Concretely:
//
//   - Counter.Add and Gauge.Set are single atomic operations on a direct
//     pointer the instrumented code captured at wiring time — no map
//     lookups, no label hashing, no interface dispatch on the hot path.
//   - Histogram.Observe computes its bucket from the raw float64 bit
//     pattern (log2 octave + mantissa sub-bucket, a fixed layout shared by
//     every histogram) and does one atomic add into one of a small number
//     of cache-line-independent shards.
//   - Scrape-time work (merging shards, cumulative bucket sums, text
//     encoding) happens only when /metrics is read.
//
// Existing subsystems that already keep their own atomic counters
// (servecache, the micro-batcher, the feedback store) are exposed through
// CounterFunc/GaugeFunc collectors that sample those counters at scrape
// time, so enabling telemetry adds zero work to their hot paths.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use, but counters are normally created through Registry.Counter so they
// appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
// The zero value reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (a CAS loop; gauges are not hot-path instruments for
// high-contention adds — use a Counter for those).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }
