package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a series. Label sets are fixed
// at registration: the hot path never renders, hashes, or looks up labels.
type Label struct {
	Name, Value string
}

// metricKind is a family's exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one label-set instance of a family. Exactly one of the value
// sources is set.
type series struct {
	labels string // pre-rendered {k="v",...}, or ""
	c      *Counter
	cf     func() uint64
	g      *Gauge
	gf     func() float64
	h      *Histogram
	les    []string // histogram only: pre-rendered le values
	bounds []float64
}

type family struct {
	name, help string
	kind       metricKind
	series     []*series
	byLabels   map[string]struct{}
}

// Registry is an ordered collection of metric families. Registration
// methods are safe for concurrent use but intended for wiring time; the
// instruments they return are the hot-path handles. A nil *Registry is
// inert: every Register call returns a working instrument that simply is
// not exported, so instrumented code never branches on "telemetry enabled".
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers (or extends) the counter family name with one series
// for the given labels and returns its instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, kindCounter, &series{c: c}, labels)
	return c
}

// CounterFunc registers a counter series whose value is sampled from fn at
// scrape time — the bridge to subsystems that already keep their own atomic
// counters (servecache, the micro-batcher, the feedback store): exposing
// them costs their hot paths nothing.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.add(name, help, kindCounter, &series{cf: fn}, labels)
}

// Gauge registers a gauge series and returns its instrument.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, kindGauge, &series{g: g}, labels)
	return g
}

// GaugeFunc registers a gauge series sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindGauge, &series{gf: fn}, labels)
}

// Histogram registers a histogram series and returns its instrument. The
// internal bucket layout is the package-wide log-linear grid; bounds picks
// the (far coarser) subset of edges exported as Prometheus le buckets —
// power-of-two values sit exactly on internal edges, so their cumulative
// counts are exact. Every series of one family must use identical bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram " + name + " needs at least one exposition bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram " + name + " bounds must be strictly increasing")
		}
	}
	h := &Histogram{}
	les := make([]string, len(bounds))
	for i, b := range bounds {
		les[i] = formatFloat(b)
	}
	r.add(name, help, kindHistogram, &series{h: h, bounds: bounds, les: les}, labels)
	return h
}

// LatencyBounds is the exposition ladder for second-denominated latency
// histograms: every other power of two from ~1µs to ~67s. All edges are
// exact internal bucket boundaries.
func LatencyBounds() []float64 {
	out := make([]float64, 0, 14)
	for e := -20; e <= 6; e += 2 {
		out = append(out, math.Ldexp(1, e))
	}
	return out
}

// SizeBounds is the exposition ladder for small-count histograms (batch
// sizes, queue depths): powers of two 1..1024. A count equal to a bound
// lands in the next bucket (internal edges are exclusive above), so these
// buckets read as "< bound" at the edges — fine for monitoring.
func SizeBounds() []float64 {
	out := make([]float64, 0, 11)
	for e := 0; e <= 10; e++ {
		out = append(out, math.Ldexp(1, e))
	}
	return out
}

// add registers one series, validating the metric name, the family's
// kind/help consistency, and label-set uniqueness. Violations panic: they
// are wiring-time programmer errors, not runtime conditions.
func (r *Registry) add(name, help string, kind metricKind, s *series, labels []Label) {
	if r == nil {
		return
	}
	if !validName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byLabels: make(map[string]struct{})}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as both %s and %s", name, f.kind, kind))
	}
	if _, dup := f.byLabels[s.labels]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, s.labels))
	}
	if kind == kindHistogram && len(f.series) > 0 {
		prev := f.series[0]
		if len(prev.bounds) != len(s.bounds) {
			panic("telemetry: histogram " + name + " series disagree on bounds")
		}
		for i := range prev.bounds {
			if prev.bounds[i] != s.bounds[i] {
				panic("telemetry: histogram " + name + " series disagree on bounds")
			}
		}
	}
	f.byLabels[s.labels] = struct{}{}
	f.series = append(f.series, s)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels pre-renders a label set as the exposition `{k="v",...}`
// fragment (empty string for no labels), escaping values per the text
// format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !validName(l.Name) || strings.Contains(l.Name, ":") {
			panic("telemetry: invalid label name " + strconv.Quote(l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// formatFloat renders a value the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes every family in registration order as Prometheus
// text exposition (version 0.0.4): # HELP and # TYPE headers followed by
// one line per series (per bucket for histograms). Scrape-time sampling of
// func-backed series happens here, outside any hot path.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.families {
		b.Reset()
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				v := uint64(0)
				if s.c != nil {
					v = s.c.Load()
				} else {
					v = s.cf()
				}
				b.WriteString(f.name)
				b.WriteString(s.labels)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(v, 10))
				b.WriteByte('\n')
			case kindGauge:
				v := 0.0
				if s.g != nil {
					v = s.g.Load()
				} else {
					v = s.gf()
				}
				b.WriteString(f.name)
				b.WriteString(s.labels)
				b.WriteByte(' ')
				b.WriteString(formatFloat(v))
				b.WriteByte('\n')
			case kindHistogram:
				writeHistogram(&b, f.name, s)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative _bucket lines for
// the exposition bounds plus le="+Inf", then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	snap := s.h.Snapshot()
	leLabel := func(le string) {
		if s.labels == "" {
			b.WriteString(`{le="`)
		} else {
			b.WriteString(s.labels[:len(s.labels)-1])
			b.WriteString(`,le="`)
		}
		b.WriteString(le)
		b.WriteString(`"}`)
	}
	for i, bound := range s.bounds {
		b.WriteString(name)
		b.WriteString("_bucket")
		leLabel(s.les[i])
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(snap.CumulativeLE(bound), 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_bucket")
	leLabel("+Inf")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(snap.Count, 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(s.labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(snap.Sum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(s.labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(snap.Count, 10))
	b.WriteByte('\n')
}
