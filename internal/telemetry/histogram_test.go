package telemetry

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestBucketBounds checks the layout invariant every other property rests
// on: each finite value lands in the bucket whose [upper(i-1), upper(i))
// range contains it.
func TestBucketBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		// Log-uniform across (and beyond) the finite range.
		v := math.Exp(rng.Float64()*80 - 40)
		b := bucketOf(v)
		switch {
		case v < histMin:
			if b != 0 {
				t.Fatalf("v=%g: bucket %d, want underflow", v, b)
			}
		case v >= histMax:
			if b != HistBuckets-1 {
				t.Fatalf("v=%g: bucket %d, want overflow", v, b)
			}
		default:
			lo, hi := BucketUpper(b-1), BucketUpper(b)
			if v < lo || v >= hi {
				t.Fatalf("v=%g: bucket %d covers [%g,%g)", v, b, lo, hi)
			}
		}
	}
	for _, v := range []float64{0, -1, math.Inf(-1), math.NaN(), math.SmallestNonzeroFloat64} {
		if b := bucketOf(v); b != 0 {
			t.Fatalf("v=%v: bucket %d, want underflow", v, b)
		}
	}
	if b := bucketOf(math.Inf(1)); b != HistBuckets-1 {
		t.Fatalf("+Inf: bucket %d, want overflow", b)
	}
	// Exact powers of two sit on bucket lower edges.
	if b := bucketOf(1.0); BucketUpper(b-1) != 1.0 {
		t.Fatalf("1.0 not on a bucket edge: bucket %d lower %g", b, BucketUpper(b-1))
	}
}

// TestQuantileAccuracy checks extracted quantiles stay within the layout's
// one-bucket (~19% wide, geometric-midpoint ±9%) error of the exact value.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 50000)
	for i := range vals {
		// Log-normalish latencies around 100µs.
		vals[i] = 100e-6 * math.Exp(rng.NormFloat64())
		h.Observe(vals[i])
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(vals)) {
		t.Fatalf("count %d, want %d", snap.Count, len(vals))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(snap.Sum-sum) > 1e-9*sum {
		t.Fatalf("sum %g, want %g", snap.Sum, sum)
	}
	exact := append([]float64(nil), vals...)
	sortFloats(exact)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := exact[int(q*float64(len(exact)-1))]
		got := snap.Quantile(q)
		if got < want/1.11 || got > want*1.11 {
			t.Fatalf("P%d: got %g, exact %g (>±10%%)", int(q*100), got, want)
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile %g", got)
	}
	var h Histogram
	h.Observe(0) // underflow
	h.Observe(math.Ldexp(1, histMaxExp+3))
	snap := h.Snapshot()
	if got := snap.Quantile(0); got != 0 {
		t.Fatalf("underflow rank quantile %g, want 0", got)
	}
	if got := snap.Quantile(1); got != histMax {
		t.Fatalf("overflow rank quantile %g, want %g", got, histMax)
	}
}

// TestSnapshotMergeable: merging two snapshots equals one histogram that
// observed both streams — the fixed shared layout makes this exact.
func TestSnapshotMergeable(t *testing.T) {
	var a, b, both Histogram
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.NormFloat64())
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	sa, sb, sw := a.Snapshot(), b.Snapshot(), both.Snapshot()
	sa.Merge(&sb)
	if sa.Count != sw.Count || sa.Counts != sw.Counts {
		t.Fatal("merged buckets differ from combined histogram")
	}
	if math.Abs(sa.Sum-sw.Sum) > 1e-9*math.Abs(sw.Sum) {
		t.Fatalf("merged sum %g vs combined %g", sa.Sum, sw.Sum)
	}
}

// TestCumulativeLEExactAtEdges: power-of-two bounds are internal bucket
// edges, so cumulative counts there are exact, and the ladder is monotone.
func TestCumulativeLEExactAtEdges(t *testing.T) {
	var h Histogram
	n := map[float64]int{0.5: 100, 1.0: 50, 1.5: 25, 3.0: 10}
	for v, k := range n {
		for i := 0; i < k; i++ {
			h.Observe(v)
		}
	}
	snap := h.Snapshot()
	// le=1 excludes the exact 1.0 observations (edges are exclusive above).
	if got := snap.CumulativeLE(1.0); got != 100 {
		t.Fatalf("le=1: %d, want 100", got)
	}
	if got := snap.CumulativeLE(2.0); got != 175 {
		t.Fatalf("le=2: %d, want 175", got)
	}
	if got := snap.CumulativeLE(4.0); got != 185 {
		t.Fatalf("le=4: %d, want 185", got)
	}
	prev := uint64(0)
	for _, b := range LatencyBounds() {
		cur := snap.CumulativeLE(b)
		if cur < prev {
			t.Fatalf("cumulative counts not monotone at %g", b)
		}
		prev = cur
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; the
// merged snapshot must account for every observation (run under -race in
// CI: the telemetry package is in the race matrix).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64())
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("count %d, want %d", got, goroutines*per)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter %d", c.Load())
	}
	var g Gauge
	g.Set(1.5)
	g.Add(-0.25)
	if g.Load() != 1.25 {
		t.Fatalf("gauge %g", g.Load())
	}
}

// TestObserveAllocFree guards the hot-path contract: recording into a
// counter, gauge, and histogram allocates nothing.
func TestObserveAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	var c Counter
	var g Gauge
	var h Histogram
	if avg := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(3.25)
		h.Observe(123e-6)
	}); avg != 0 {
		t.Fatalf("instrument ops allocate %.1f/op, want 0", avg)
	}
}

func BenchmarkObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(123e-6)
		}
	})
}

// TestSnapshotSub checks the windowed-view contract: subtracting an earlier
// snapshot leaves exactly the observations made between the two instants.
func TestSnapshotSub(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	first := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(1.0)
	}
	window := h.Snapshot()
	window.Sub(&first)
	if window.Count != 50 {
		t.Fatalf("window count %d, want 50", window.Count)
	}
	if got := window.Quantile(0.5); math.Abs(got-1.0) > 0.15 {
		t.Fatalf("window median %g, want ~1.0 (the earlier 1ms observations must be gone)", got)
	}
	if m := window.Mean(); math.Abs(m-1.0) > 1e-9 {
		t.Fatalf("window mean %g, want 1.0", m)
	}
	// Subtracting a later snapshot from an earlier one clamps, not wraps.
	later := h.Snapshot()
	first.Sub(&later)
	if first.Count != 0 {
		t.Fatalf("clamped count %d, want 0", first.Count)
	}
	for b, n := range first.Counts {
		if n != 0 {
			t.Fatalf("clamped bucket %d holds %d", b, n)
		}
	}
}
