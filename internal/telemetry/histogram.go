package telemetry

import (
	"math"
	"math/rand/v2"
	"sync/atomic"
)

// The histogram bucket layout is fixed and shared by every Histogram: a
// log-linear grid of 4 sub-buckets per power of two, covering 2^-30
// (~0.93ns when observing seconds) through 2^14 (~4.5h), plus an underflow
// bucket (zero, negatives, NaN, subnormals) and an overflow bucket. The
// relative width of one bucket is 2^(1/4) ≈ 19%, so extracted quantiles
// carry at most ~±9% relative error — plenty for latency percentiles —
// while the whole layout is 178 words per shard.
//
// A fixed layout is what makes snapshots mergeable: any two histograms
// (or two snapshots of one histogram taken on different days) add
// bucket-by-bucket, which the bench harness and the Prometheus encoder
// both rely on.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits // sub-buckets per octave
	histMinExp  = -30
	histMaxExp  = 14
	histFinite  = (histMaxExp - histMinExp) * histSub
	// HistBuckets is the total bucket count: underflow + finite + overflow.
	HistBuckets = histFinite + 2
	// histShards spreads concurrent Observe calls across independent count
	// arrays so two cores recording the same latency don't serialize on one
	// cache line. Merged only at snapshot time.
	histShards = 4
)

// histMin/histMax bound the finite bucket range.
var (
	histMin = math.Ldexp(1, histMinExp)
	histMax = math.Ldexp(1, histMaxExp)
)

// histShard is one independent copy of the bucket counts. The trailing pad
// keeps a shard's sum word and the next shard's first buckets off a shared
// cache line.
type histShard struct {
	counts  [HistBuckets]atomic.Uint64
	sumBits atomic.Uint64
	_       [56]byte
}

// Histogram is a lock-free sharded log-scale histogram. The zero value is
// ready to use; create through Registry.Histogram to appear in the
// exposition. Observe is safe for any number of concurrent callers and
// never allocates.
type Histogram struct {
	shards [histShards]histShard
}

// bucketOf maps a value to its bucket index. The comparison is written so
// NaN (for which v >= histMin is false) lands in the underflow bucket.
func bucketOf(v float64) int {
	if !(v >= histMin) {
		return 0
	}
	if v >= histMax {
		return HistBuckets - 1
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52) - 1023 // v is normal: histMin is far above subnormals
	sub := int(bits>>(52-histSubBits)) & (histSub - 1)
	return 1 + (exp-histMinExp)<<histSubBits + sub
}

// BucketUpper returns the exclusive upper bound of bucket i: 0 has no lower
// range (returns the smallest finite bound), the last returns +Inf.
func BucketUpper(i int) float64 {
	switch {
	case i <= 0:
		return histMin
	case i >= HistBuckets-1:
		return math.Inf(1)
	}
	j := i - 1
	oct := j>>histSubBits + histMinExp
	sub := j & (histSub - 1)
	return math.Ldexp(1+float64(sub+1)/histSub, oct)
}

// Observe records one value. One branch-free bucket computation, one
// per-shard atomic add for the count, and one CAS for the sum; the shard is
// chosen by the runtime's per-thread fast RNG so concurrent observers
// spread out instead of serializing.
func (h *Histogram) Observe(v float64) {
	s := &h.shards[rand.Uint64()&(histShards-1)]
	s.counts[bucketOf(v)].Add(1)
	if v == v && !math.IsInf(v, 0) { // NaN/±Inf are counted but excluded from the sum
		for {
			old := s.sumBits.Load()
			if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
				break
			}
		}
	}
}

// HistogramSnapshot is a merged, point-in-time copy of a histogram's
// buckets. Snapshots from different histograms (with the layout being
// process-wide, that is all of them) merge bucket-by-bucket.
type HistogramSnapshot struct {
	Counts [HistBuckets]uint64
	Count  uint64
	Sum    float64
}

// Snapshot merges the shards into one snapshot. Counts and sum are each
// atomically read but not mutually synchronized — the usual monitoring
// tradeoff; both are within one in-flight Observe of each other.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var out HistogramSnapshot
	for i := range h.shards {
		s := &h.shards[i]
		for b := range out.Counts {
			n := s.counts[b].Load()
			out.Counts[b] += n
			out.Count += n
		}
		out.Sum += math.Float64frombits(s.sumBits.Load())
	}
	return out
}

// Merge adds o into s.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for b := range s.Counts {
		s.Counts[b] += o.Counts[b]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Sub subtracts an earlier snapshot of the same histogram from s, leaving
// the observations made between the two snapshot instants. This is how a
// windowed view (per-second P99 during a soak run) is extracted from one
// continuously-observed histogram without ever pausing or resetting it:
// snapshot at each window edge and subtract the previous edge. Counts that
// would underflow (o not actually earlier, or from a different histogram)
// clamp to zero.
func (s *HistogramSnapshot) Sub(o *HistogramSnapshot) {
	for b := range s.Counts {
		if s.Counts[b] >= o.Counts[b] {
			s.Counts[b] -= o.Counts[b]
		} else {
			s.Counts[b] = 0
		}
	}
	if s.Count >= o.Count {
		s.Count -= o.Count
	} else {
		s.Count = 0
	}
	s.Sum -= o.Sum
}

// Mean returns the mean of the summed observations (NaN/±Inf excluded from
// the sum at Observe time). An empty snapshot returns 0.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile extracts the q-quantile (0 ≤ q ≤ 1) as the geometric midpoint of
// the bucket holding that rank: P50/P90/P99 with the layout's ±9% relative
// error. An empty snapshot returns 0; ranks in the underflow bucket return
// 0; ranks in the overflow bucket return the largest finite bound.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for b, n := range s.Counts {
		cum += n
		if cum >= rank {
			switch {
			case b == 0:
				return 0
			case b == HistBuckets-1:
				return histMax
			}
			lo := BucketUpper(b - 1) // bucket b covers [upper(b-1), upper(b))
			return lo * math.Sqrt(BucketUpper(b)/lo)
		}
	}
	return histMax
}

// CumulativeLE returns how many observations were ≤ bound, counting every
// whole bucket whose upper edge is ≤ bound (the underflow bucket included).
// Bounds that sit on bucket edges — like the encoder's power-of-two ladders
// — are therefore exact.
func (s *HistogramSnapshot) CumulativeLE(bound float64) uint64 {
	cum := s.Counts[0]
	for b := 1; b < HistBuckets-1; b++ {
		if BucketUpper(b) > bound {
			break
		}
		cum += s.Counts[b]
	}
	return cum
}
