package telemetry

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expositionLine matches one sample line of the text format:
// name{labels} value (labels optional).
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// validateExposition parses a full exposition document, enforcing the
// format invariants a Prometheus scraper relies on: every sample line
// parses, every metric was declared by a preceding # TYPE, histogram
// suffixes (_bucket/_sum/_count) attach to histogram families, and
// cumulative bucket counts are monotone.
func validateExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{}
	var lastBucket uint64
	var lastBucketSeries string
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if parts[3] != "counter" && parts[3] != "gauge" && parts[3] != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, parts[3])
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("line %d: family %s declared twice", ln+1, parts[2])
			}
			types[parts[2]] = parts[3]
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			if !expositionLine.MatchString(line) {
				t.Fatalf("line %d: unparseable sample %q", ln+1, line)
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			base, suffix := name, ""
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, sfx) && types[strings.TrimSuffix(name, sfx)] == "histogram" {
					base, suffix = strings.TrimSuffix(name, sfx), sfx
				}
			}
			typ, ok := types[base]
			if !ok {
				t.Fatalf("line %d: sample %s precedes its TYPE", ln+1, name)
			}
			if typ == "histogram" && suffix == "" {
				t.Fatalf("line %d: bare histogram sample %q", ln+1, line)
			}
			if suffix == "_bucket" {
				val := line[strings.LastIndexByte(line, ' ')+1:]
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					t.Fatalf("line %d: bucket count %q: %v", ln+1, val, err)
				}
				serie := line[:strings.Index(line, `le="`)]
				if serie == lastBucketSeries && n < lastBucket {
					t.Fatalf("line %d: cumulative bucket counts not monotone", ln+1)
				}
				lastBucket, lastBucketSeries = n, serie
			}
		}
	}
	return types
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dace_test_requests_total", "Requests.", Label{"endpoint", "/predict"}, Label{"code", "2xx"})
	c.Add(7)
	reg.Counter("dace_test_requests_total", "Requests.", Label{"endpoint", "/predict"}, Label{"code", "4xx"}).Inc()
	g := reg.Gauge("dace_test_depth", "Queue depth.")
	g.Set(3)
	reg.GaugeFunc("dace_test_heap_bytes", "Sampled at scrape.", func() float64 { return 1024 })
	reg.CounterFunc("dace_test_hits_total", "Bridged atomic.", func() uint64 { return 99 })
	h := reg.Histogram("dace_test_latency_seconds", "Latency.", LatencyBounds(), Label{"endpoint", "/predict"})
	h.Observe(100e-6)
	h.Observe(2e-3)
	h.Observe(2e-3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	types := validateExposition(t, text)
	if types["dace_test_requests_total"] != "counter" || types["dace_test_latency_seconds"] != "histogram" {
		t.Fatalf("family types: %v", types)
	}
	for _, want := range []string{
		`dace_test_requests_total{endpoint="/predict",code="2xx"} 7`,
		`dace_test_requests_total{endpoint="/predict",code="4xx"} 1`,
		"dace_test_depth 3",
		"dace_test_heap_bytes 1024",
		"dace_test_hits_total 99",
		`dace_test_latency_seconds_count{endpoint="/predict"} 3`,
		`dace_test_latency_seconds_bucket{endpoint="/predict",le="+Inf"} 3`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// 100µs is under the 2^-12 (~244µs) bound; both 2ms observations are
	// under 2^-8 (~3.9ms).
	le := func(e int) string {
		return `le="` + formatFloat(math.Ldexp(1, e)) + `"`
	}
	if !strings.Contains(text, `dace_test_latency_seconds_bucket{endpoint="/predict",`+le(-12)+`} 1`) {
		t.Fatalf("le=2^-12 bucket wrong:\n%s", text)
	}
	if !strings.Contains(text, `dace_test_latency_seconds_bucket{endpoint="/predict",`+le(-8)+`} 3`) {
		t.Fatalf("le=2^-8 bucket wrong:\n%s", text)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dace_test_esc_total", "", Label{"q", "a\"b\\c\nd"})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `dace_test_esc_total{q="a\"b\\c\nd"} 0`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
	validateExposition(t, b.String())
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("dace_ok_total", "")
	mustPanic("bad name", func() { reg.Counter("0bad", "") })
	mustPanic("dup series", func() { reg.Counter("dace_ok_total", "") })
	mustPanic("kind clash", func() { reg.Gauge("dace_ok_total", "") })
	mustPanic("empty bounds", func() { reg.Histogram("dace_h", "", nil) })
	mustPanic("unsorted bounds", func() { reg.Histogram("dace_h", "", []float64{2, 1}) })
	reg.Histogram("dace_h2", "", []float64{1, 2}, Label{"a", "x"})
	mustPanic("bounds clash", func() { reg.Histogram("dace_h2", "", []float64{1, 4}, Label{"a", "y"}) })
}

// TestNilRegistry: a nil registry hands out working (just unexported)
// instruments, so wiring code can be telemetry-optional without branches.
func TestNilRegistry(t *testing.T) {
	var reg *Registry
	c := reg.Counter("anything", "")
	c.Inc()
	if c.Load() != 1 {
		t.Fatal("nil-registry counter broken")
	}
	reg.Histogram("h", "", LatencyBounds()).Observe(1)
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
