//go:build race

package telemetry

// AllocsPerRun guards are only meaningful without it.
const raceEnabled = true
