// Package feedback is the ingestion side of DACE's online-adaptation loop:
// a bounded, concurrency-safe replay buffer of observed
// (plan, actual latency) samples, plus an append-only CRC32-framed on-disk
// log so feedback survives process restarts.
//
// The store deduplicates by plan fingerprint — an optimizer re-costs the
// same plans over and over, and a thousand copies of one plan teach the
// fine-tuner nothing — and degrades to uniform reservoir sampling once the
// capacity is reached, so the buffer stays an unbiased sample of the
// distinct plans observed since startup rather than a window over the most
// recent burst.
package feedback

import (
	"math/rand"
	"sync"

	"dace/internal/plan"
)

// Sample is one observed execution: the plan as served (nodes may carry
// per-node actual_ms labels for deeper supervision) and the measured root
// latency. PredictedMS records what the serving model answered at ingest
// time, for drift bookkeeping; 0 means unknown.
type Sample struct {
	Plan        *plan.Plan
	ActualMS    float64
	PredictedMS float64
}

// Store is the bounded replay buffer. All methods are safe for concurrent
// use. Plans handed to Add are retained by reference and must not be
// mutated afterwards.
type Store struct {
	mu       sync.Mutex
	capacity int
	rng      *rand.Rand
	index    map[plan.Fingerprint]int // fingerprint → slot
	samples  []Sample
	fps      []plan.Fingerprint // slot → fingerprint (for eviction)
	offered  int64              // distinct fingerprints ever offered (reservoir clock)
	updated  uint64
	dropped  uint64
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
	Offered  int64  `json:"offered"` // distinct plans ever offered
	Updated  uint64 `json:"updated"` // dedup refreshes of a resident plan
	Dropped  uint64 `json:"dropped"` // reservoir rejections after capacity
}

// NewStore builds a store holding at most capacity distinct plans.
// Reservoir replacement is driven by a seeded RNG so runs are reproducible.
func NewStore(capacity int, seed int64) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
		index:    make(map[plan.Fingerprint]int, capacity),
	}
}

// Add offers a sample to the store and reports whether it is resident
// afterwards. A sample whose fingerprint is already present refreshes that
// slot in place (latest observation wins) without consuming a reservoir
// draw. Once the store is full, a new fingerprint replaces a uniformly
// random resident with probability capacity/offered — classic reservoir
// sampling over the distinct-plan stream. Samples without a root or with a
// non-positive latency are rejected.
func (s *Store) Add(smp Sample) bool {
	if smp.Plan == nil || !(smp.ActualMS > 0) {
		return false
	}
	fp := smp.Plan.Fingerprint()
	if fp.IsZero() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.index[fp]; ok {
		s.samples[i] = smp
		s.updated++
		return true
	}
	s.offered++
	if len(s.samples) < s.capacity {
		s.index[fp] = len(s.samples)
		s.samples = append(s.samples, smp)
		s.fps = append(s.fps, fp)
		return true
	}
	j := s.rng.Int63n(s.offered)
	if j >= int64(s.capacity) {
		s.dropped++
		return false
	}
	delete(s.index, s.fps[j])
	s.samples[j] = smp
	s.fps[j] = fp
	s.index[fp] = int(j)
	return true
}

// Len returns the number of resident samples.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Snapshot returns a copy of the resident samples, safe to read while the
// store keeps ingesting. The Sample structs are copied; the plans they
// point at are shared and treated as immutable.
func (s *Store) Snapshot() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Size:     len(s.samples),
		Capacity: s.capacity,
		Offered:  s.offered,
		Updated:  s.updated,
		Dropped:  s.dropped,
	}
}
