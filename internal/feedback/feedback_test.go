package feedback

import (
	"sync"
	"testing"

	"dace/internal/plan"
)

// testPlan builds a minimal one-node plan whose fingerprint is unique per id.
func testPlan(id int) *plan.Plan {
	return &plan.Plan{
		Database: "t",
		Root:     &plan.Node{Type: plan.SeqScan, EstRows: float64(10 + id), EstCost: float64(100 + id)},
	}
}

func TestStoreDedupsByFingerprint(t *testing.T) {
	s := NewStore(16, 1)
	p := testPlan(1)
	if !s.Add(Sample{Plan: p, ActualMS: 5}) {
		t.Fatal("first add rejected")
	}
	// Same fingerprint (fresh but identical plan): refresh in place.
	if !s.Add(Sample{Plan: testPlan(1), ActualMS: 9}) {
		t.Fatal("dedup refresh rejected")
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d samples, want 1", s.Len())
	}
	if got := s.Snapshot()[0].ActualMS; got != 9 {
		t.Fatalf("dedup kept stale latency %v, want 9", got)
	}
	if st := s.Stats(); st.Updated != 1 || st.Offered != 1 {
		t.Fatalf("stats %+v, want 1 update over 1 offered", st)
	}
}

func TestStoreRejectsInvalidSamples(t *testing.T) {
	s := NewStore(4, 1)
	for _, smp := range []Sample{
		{Plan: nil, ActualMS: 5},
		{Plan: testPlan(1), ActualMS: 0},
		{Plan: testPlan(2), ActualMS: -1},
		{Plan: &plan.Plan{Database: "t"}, ActualMS: 5}, // no root
	} {
		if s.Add(smp) {
			t.Fatalf("invalid sample accepted: %+v", smp)
		}
	}
	if s.Len() != 0 {
		t.Fatal("invalid samples became resident")
	}
}

func TestStoreReservoirBoundsCapacity(t *testing.T) {
	const capacity, n = 8, 400
	s := NewStore(capacity, 7)
	kept := 0
	for i := 0; i < n; i++ {
		if s.Add(Sample{Plan: testPlan(i), ActualMS: float64(i + 1)}) {
			kept++
		}
	}
	if s.Len() != capacity {
		t.Fatalf("store holds %d, want capacity %d", s.Len(), capacity)
	}
	st := s.Stats()
	if st.Offered != n || st.Dropped == 0 {
		t.Fatalf("stats %+v: want %d offered and some reservoir drops", st, n)
	}
	// Residents are distinct plans.
	seen := map[plan.Fingerprint]bool{}
	for _, smp := range s.Snapshot() {
		fp := smp.Plan.Fingerprint()
		if seen[fp] {
			t.Fatal("duplicate fingerprint resident after reservoir eviction")
		}
		seen[fp] = true
	}
	// Same seed, same stream → identical reservoir (determinism).
	s2 := NewStore(capacity, 7)
	for i := 0; i < n; i++ {
		s2.Add(Sample{Plan: testPlan(i), ActualMS: float64(i + 1)})
	}
	a, b := s.Snapshot(), s2.Snapshot()
	for i := range a {
		if a[i].ActualMS != b[i].ActualMS {
			t.Fatal("reservoir is not deterministic for a fixed seed")
		}
	}
}

func TestStoreDedupAfterEvictionStaysConsistent(t *testing.T) {
	s := NewStore(4, 3)
	for i := 0; i < 100; i++ {
		s.Add(Sample{Plan: testPlan(i), ActualMS: 1})
		// Refresh a resident picked from the snapshot: index bookkeeping
		// must survive arbitrary interleaving of evictions and updates.
		if snap := s.Snapshot(); len(snap) > 0 {
			s.Add(Sample{Plan: snap[0].Plan, ActualMS: 2})
		}
	}
	if s.Len() != 4 {
		t.Fatalf("len %d, want 4", s.Len())
	}
}

func TestStoreConcurrentAddSnapshot(t *testing.T) {
	s := NewStore(64, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(Sample{Plan: testPlan(w*1000 + i), ActualMS: 1})
				if i%17 == 0 {
					_ = s.Snapshot()
					_ = s.Stats()
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 64 {
		t.Fatalf("len %d, want 64", s.Len())
	}
}
