package feedback

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"dace/internal/plan"
)

// Log is the durable side of the replay buffer: an append-only file of
// CRC32-framed records, one per feedback sample. Each record is
//
//	[4-byte little-endian payload length][4-byte CRC32(payload)][payload]
//
// with a JSON payload. Appends are atomic at the frame level: a crash can
// tear at most the final record, and Open detects the torn tail (short
// frame, absurd length, or CRC mismatch) and truncates the file back to
// the last intact record before any replay. Everything before the tail is
// CRC-verified on every Replay, so a bit flip surfaces as an error rather
// than a silently corrupted training sample.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	buf  []byte

	bytes     int64  // current log size (valid at Open + appended frames)
	appended  uint64 // records appended since Open
	truncated int64  // torn-tail bytes trimmed by Open
}

// LogStats is a point-in-time snapshot of the log counters.
type LogStats struct {
	Bytes     int64  `json:"bytes"`     // current on-disk size
	Appended  uint64 `json:"appended"`  // records appended since Open
	Truncated int64  `json:"truncated"` // torn-tail bytes trimmed at Open
}

// maxRecordSize bounds one framed payload; a length field beyond it marks
// the tail as torn (the serve layer caps request bodies well below this).
const maxRecordSize = 16 << 20

// record is the wire form of one sample.
type record struct {
	Plan        *plan.Plan `json:"plan"`
	ActualMS    float64    `json:"actual_ms"`
	PredictedMS float64    `json:"predicted_ms,omitempty"`
}

// Open opens (creating if needed) the log at path and repairs its tail: the
// file is scanned frame by frame, and the first torn or corrupt frame —
// the signature of a crash mid-append — truncates the file at the last
// intact boundary. The returned log is positioned for appends.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	valid, err := scanValid(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	torn := int64(0)
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		torn = fi.Size() - valid
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("feedback: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, path: path, bytes: valid, truncated: torn}, nil
}

// scanValid returns the byte offset of the last intact frame boundary.
func scanValid(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var (
		offset int64
		header [8]byte
		buf    []byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			// Clean EOF or a torn header: everything from offset on is tail.
			return offset, nil
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > maxRecordSize {
			return offset, nil
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(f, buf); err != nil {
			return offset, nil // torn payload
		}
		if crc32.ChecksumIEEE(buf) != crc {
			return offset, nil // corrupt frame
		}
		offset += 8 + int64(n)
	}
}

// Append frames and writes one sample. The frame is assembled in one
// buffer and issued as a single Write, so concurrent appends never
// interleave and a crash tears at most the final frame.
func (l *Log) Append(smp Sample) error {
	payload, err := json.Marshal(record{Plan: smp.Plan, ActualMS: smp.ActualMS, PredictedMS: smp.PredictedMS})
	if err != nil {
		return fmt.Errorf("feedback: encode record: %w", err)
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("feedback: record of %d bytes exceeds frame limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(len(payload)))
	l.buf = binary.LittleEndian.AppendUint32(l.buf, crc32.ChecksumIEEE(payload))
	l.buf = append(l.buf, payload...)
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("feedback: append: %w", err)
	}
	l.bytes += int64(len(l.buf))
	l.appended++
	return nil
}

// Stats snapshots the log counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{Bytes: l.bytes, Appended: l.appended, Truncated: l.truncated}
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Replay reads every record from the start of the log in append order and
// hands it to fn; fn returning an error stops the replay. Open has already
// truncated any torn tail, so a CRC failure here means on-disk corruption
// of a previously intact record and is reported as an error. Replay holds
// the log lock — call it before serving starts.
func (l *Log) Replay(fn func(Sample) error) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, err := os.Open(l.path)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	var (
		count  int
		header [8]byte
		buf    []byte
	)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF {
				return count, nil
			}
			return count, fmt.Errorf("feedback: replay frame header: %w", err)
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > maxRecordSize {
			return count, fmt.Errorf("feedback: replay: frame length %d out of range", n)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return count, fmt.Errorf("feedback: replay frame payload: %w", err)
		}
		if crc32.ChecksumIEEE(buf) != crc {
			return count, fmt.Errorf("feedback: replay: record %d failed its checksum", count)
		}
		var rec record
		if err := json.Unmarshal(buf, &rec); err != nil {
			return count, fmt.Errorf("feedback: replay record %d: %w", count, err)
		}
		if err := fn(Sample{Plan: rec.Plan, ActualMS: rec.ActualMS, PredictedMS: rec.PredictedMS}); err != nil {
			return count, err
		}
		count++
	}
}

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
