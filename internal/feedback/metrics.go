package feedback

import "dace/internal/telemetry"

// RegisterMetrics exports the replay store and (when non-nil) the durable
// log into reg through scrape-time collectors. The store and log keep their
// own counters under their own locks; sampling them at scrape time costs the
// ingest path nothing. Safe to call with a nil registry (no-op).
func RegisterMetrics(reg *telemetry.Registry, store *Store, log *Log) {
	if reg == nil || store == nil {
		return
	}
	reg.GaugeFunc("dace_feedback_replay_size", "Distinct plans resident in the replay buffer.",
		func() float64 { return float64(store.Stats().Size) })
	reg.GaugeFunc("dace_feedback_replay_capacity", "Replay buffer capacity (distinct plans).",
		func() float64 { return float64(store.Stats().Capacity) })
	reg.CounterFunc("dace_feedback_offered_total", "Distinct plans ever offered to the replay buffer.",
		func() uint64 { return uint64(store.Stats().Offered) })
	reg.CounterFunc("dace_feedback_updated_total", "In-place refreshes of an already-resident plan.",
		func() uint64 { return store.Stats().Updated })
	reg.CounterFunc("dace_feedback_dropped_total", "Reservoir rejections after the buffer filled.",
		func() uint64 { return store.Stats().Dropped })
	if log == nil {
		return
	}
	reg.GaugeFunc("dace_feedback_log_bytes", "Current size of the durable feedback log.",
		func() float64 { return float64(log.Stats().Bytes) })
	reg.CounterFunc("dace_feedback_log_records_total", "Records appended to the feedback log since open.",
		func() uint64 { return log.Stats().Appended })
	reg.GaugeFunc("dace_feedback_log_truncated_bytes", "Torn-tail bytes trimmed when the log was opened.",
		func() float64 { return float64(log.Stats().Truncated) })
}
