package feedback

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := l.Append(Sample{Plan: testPlan(i), ActualMS: float64(i + 1), PredictedMS: float64(i + 2)}); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, l *Log) []Sample {
	t.Helper()
	var out []Sample
	n, err := l.Replay(func(s Sample) error { out = append(out, s); return nil })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != len(out) {
		t.Fatalf("replay count %d vs %d samples", n, len(out))
	}
	return out
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feedback.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, s := range got {
		if s.ActualMS != float64(i+1) || s.PredictedMS != float64(i+2) {
			t.Fatalf("record %d latencies %v/%v", i, s.ActualMS, s.PredictedMS)
		}
		if s.Plan.Fingerprint() != testPlan(i).Fingerprint() {
			t.Fatalf("record %d plan lost its identity", i)
		}
	}
}

// TestLogRecoversFromTornTail simulates a crash mid-append: raw garbage
// after the last intact frame must be truncated on Open, the intact prefix
// must replay losslessly, and the log must accept appends again.
func TestLogRecoversFromTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feedback.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	l.Close()
	intact, _ := os.Stat(path)

	for name, tail := range map[string][]byte{
		"short header":  {0x01, 0x02, 0x03},
		"torn payload":  append(binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 500), 0xdeadbeef), []byte("partial")...),
		"absurd length": binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 1<<30), 0),
		"zero length":   make([]byte, 16),
		"crc mismatch":  crcMismatchFrame(),
	} {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(tail)
		f.Close()

		l2, err := Open(path)
		if err != nil {
			t.Fatalf("%s: reopen: %v", name, err)
		}
		if got := replayAll(t, l2); len(got) != 5 {
			t.Fatalf("%s: replayed %d records, want 5", name, len(got))
		}
		if st, _ := os.Stat(path); st.Size() != intact.Size() {
			t.Fatalf("%s: tail not truncated (%d vs %d bytes)", name, st.Size(), intact.Size())
		}
		// The repaired log accepts appends and replays them.
		appendN(t, l2, 5, 1)
		if got := replayAll(t, l2); len(got) != 6 {
			t.Fatalf("%s: post-recovery append lost", name)
		}
		l2.Close()
		// Restore the 5-record file for the next case.
		if err := os.Truncate(path, intact.Size()); err != nil {
			t.Fatal(err)
		}
	}
}

// crcMismatchFrame is a structurally valid frame whose checksum is wrong.
func crcMismatchFrame() []byte {
	payload := []byte(`{"actual_ms":1}`)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, 0x12345678) // not the CRC
	return append(frame, payload...)
}

func TestLogOpenCreatesEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}
