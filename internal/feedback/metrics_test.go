package feedback

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dace/internal/telemetry"
)

// TestLogStats checks the log counters: bytes track the on-disk size
// exactly, appends count, and a torn tail surfaces as truncated bytes on
// the next Open.
func TestLogStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feedback.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 7)
	st := l.Stats()
	if st.Appended != 7 {
		t.Fatalf("appended %d, want 7", st.Appended)
	}
	fi, _ := os.Stat(path)
	if st.Bytes != fi.Size() {
		t.Fatalf("stats bytes %d, file %d", st.Bytes, fi.Size())
	}
	if st.Truncated != 0 {
		t.Fatalf("truncated %d on a clean log", st.Truncated)
	}
	l.Close()

	// Tear the tail; Open must report exactly the trimmed byte count.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte{0x01, 0x02, 0x03, 0x04, 0x05}
	f.Write(garbage)
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st2 := l2.Stats()
	if st2.Truncated != int64(len(garbage)) {
		t.Fatalf("truncated %d bytes, want %d", st2.Truncated, len(garbage))
	}
	if st2.Appended != 0 {
		t.Fatalf("appended %d after reopen, want 0", st2.Appended)
	}
	if fi2, _ := os.Stat(path); st2.Bytes != fi2.Size() {
		t.Fatalf("stats bytes %d, file %d", st2.Bytes, fi2.Size())
	}
}

// TestRegisterMetrics wires store and log into a registry and checks the
// families land in the exposition with live values.
func TestRegisterMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feedback.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	store := NewStore(4, 1)
	RegisterMetrics(telemetry.NewRegistry(), nil, nil) // nil store: no-op
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg, store, l)

	for i := 0; i < 6; i++ {
		smp := Sample{Plan: testPlan(i), ActualMS: float64(i + 1)}
		store.Add(smp)
		if err := l.Append(smp); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"dace_feedback_replay_capacity 4",
		"dace_feedback_offered_total 6",
		"dace_feedback_log_records_total 6",
		"dace_feedback_log_truncated_bytes 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}
