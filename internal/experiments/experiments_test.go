package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dace/internal/workload"
)

// quickLab builds a lab at test scale writing into a buffer.
func quickLab() (*Lab, *bytes.Buffer) {
	cfg := QuickConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	return NewLab(cfg), &buf
}

func TestLabWorkloadCachingAndShape(t *testing.T) {
	l, _ := quickLab()
	a := l.Workload("imdb", "M1")
	b := l.Workload("imdb", "M1")
	if len(a) != l.Cfg.QueriesPerDB {
		t.Fatalf("workload size %d, want %d", len(a), l.Cfg.QueriesPerDB)
	}
	if &a[0] != &b[0] {
		t.Fatal("workload not cached")
	}
	m2 := l.Workload("imdb", "M2")
	if a[0].Plan.Root.ActualMS == m2[0].Plan.Root.ActualMS {
		t.Fatal("M1 and M2 workloads should have different labels")
	}
}

func TestTrainingDBsLeaveOneOut(t *testing.T) {
	l, _ := quickLab()
	names := l.TrainingDBs("imdb", 19)
	if len(names) != 19 {
		t.Fatalf("got %d training DBs, want 19", len(names))
	}
	for _, n := range names {
		if n == "imdb" {
			t.Fatal("excluded database included")
		}
	}
	if got := l.TrainingDBs("imdb", 3); len(got) != 3 {
		t.Fatalf("capped selection returned %d", len(got))
	}
	// Deterministic.
	again := l.TrainingDBs("imdb", 3)
	for i := range again {
		if got := l.TrainingDBs("imdb", 3); got[i] != again[i] {
			t.Fatal("training DB selection not deterministic")
		}
	}
}

func TestW3SplitsDistinctAndSized(t *testing.T) {
	l, _ := quickLab()
	syn := l.W3Split(workload.Synthetic)
	job := l.W3Split(workload.JOBLight)
	if len(syn) != l.Cfg.W3Synthetic || len(job) != l.Cfg.W3JOBLight {
		t.Fatalf("split sizes %d/%d", len(syn), len(job))
	}
	if syn[0].Query.SQL() == job[0].Query.SQL() {
		t.Fatal("splits look identical")
	}
}

func TestFig4ErrorGrowsWithPlanSize(t *testing.T) {
	l, _ := quickLab()
	res := l.Fig4()
	if len(res.Buckets) < 3 {
		t.Fatalf("too few buckets: %d", len(res.Buckets))
	}
	first, last := res.Buckets[0], res.Buckets[len(res.Buckets)-1]
	if last.Mean <= first.Mean {
		t.Fatalf("Zero-Shot error should grow with plan size: %v → %v", first.Mean, last.Mean)
	}
}

func TestFig5DACECompetitiveAcrossDatabases(t *testing.T) {
	l, buf := quickLab()
	res := l.Fig5([]string{"imdb", "baseball", "walmart", "credit"})
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	if res.Wins < len(res.Rows)/2 {
		t.Fatalf("DACE wins only %d/%d databases vs Zero-Shot", res.Wins, len(res.Rows))
	}
	for _, r := range res.Rows {
		if math.IsNaN(r.DACE) || math.IsNaN(r.DACELoRA) {
			t.Fatal("NaN medians")
		}
		if r.DACE > 5 {
			t.Fatalf("DACE median on %s is %v; across-database accuracy collapsed", r.DB, r.DACE)
		}
	}
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Fatal("missing printed output")
	}
}

func TestTable1ShapesHold(t *testing.T) {
	l, buf := quickLab()
	res := l.Table1()
	if len(res.Order) != 8 {
		t.Fatalf("Table I should have 8 estimators, got %d", len(res.Order))
	}
	for _, split := range W3Splits() {
		sums := res.Summaries[split]
		dace := sums["DACE"]
		pg := sums["PostgreSQL"]
		if dace.Median > pg.Median*1.5 {
			t.Fatalf("%s: DACE median %v should be competitive with PostgreSQL %v", split, dace.Median, pg.Median)
		}
		// The paper's tail story: DACE's max q-error is far below the WDMs'.
		if dace.Max > sums["MSCN"].Max*2 {
			t.Fatalf("%s: DACE max %v worse than MSCN max %v", split, dace.Max, sums["MSCN"].Max)
		}
		lora := sums["DACE-LoRA"]
		if lora.Median > dace.Median*1.6 {
			t.Fatalf("%s: LoRA fine-tuning should not hurt much (%v vs %v)", split, lora.Median, dace.Median)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "JOB-light") || !strings.Contains(out, "DACE-LoRA") {
		t.Fatal("Table I output incomplete")
	}
}

func TestFig6EncoderIntegrationHelps(t *testing.T) {
	l, _ := quickLab()
	res := l.Fig6()
	// The paper's Fig. 6 claim is about the tails: the plain WDMs' max
	// q-error dwarfs the DACE-integrated variants'.
	if res.DACEMSCN.Max > res.MSCN.Max {
		t.Fatalf("DACE-MSCN max %v should not exceed MSCN max %v", res.DACEMSCN.Max, res.MSCN.Max)
	}
	if res.DACEMSCN.Mean > res.MSCN.Mean {
		t.Fatalf("DACE-MSCN mean %v should not exceed MSCN mean %v", res.DACEMSCN.Mean, res.MSCN.Mean)
	}
	if res.DACEQueryFormer.Max > res.QueryFormer.Max*1.2 {
		t.Fatalf("DACE-QueryFormer max %v much worse than QueryFormer %v", res.DACEQueryFormer.Max, res.QueryFormer.Max)
	}
}

func TestTable2EfficiencyShapes(t *testing.T) {
	l, _ := quickLab()
	res := l.Table2()
	byName := map[string]EfficiencyRow{}
	for _, r := range res.Rows {
		byName[r.Model] = r
	}
	dace := byName["DACE"]
	if dace.SizeMB <= 0 || dace.SizeMB > 0.25 {
		t.Fatalf("DACE size %v MB", dace.SizeMB)
	}
	for _, name := range []string{"MSCN", "QPPNet", "TPool", "QueryFormer", "Zero-Shot"} {
		r := byName[name]
		if r.SizeMB < dace.SizeMB*2 {
			t.Fatalf("%s (%v MB) should dwarf DACE (%v MB)", name, r.SizeMB, dace.SizeMB)
		}
		if r.TrainQPS <= 0 || r.InferenceQPS <= 0 {
			t.Fatalf("%s has non-positive throughput", name)
		}
		if dace.TrainQPS < r.TrainQPS {
			t.Fatalf("DACE trains slower (%v q/s) than %s (%v q/s)", dace.TrainQPS, name, r.TrainQPS)
		}
		if dace.InferenceQPS < r.InferenceQPS {
			t.Fatalf("DACE infers slower than %s", name)
		}
	}
	if res.LoRASpeedup <= 1 {
		t.Fatalf("LoRA fine-tuning should beat full-training throughput, got %vx", res.LoRASpeedup)
	}
	if byName["DACE-LoRA"].SizeMB >= byName["MSCN"].SizeMB {
		t.Fatal("LoRA adapter size should be far below baseline model sizes")
	}
}

func TestFig7WDMsDegradeUnderDrift(t *testing.T) {
	l, _ := quickLab()
	res := l.Fig7()
	first := func(name string) Fig7Point { return res.Curves[name][0] }
	last := func(name string) Fig7Point { c := res.Curves[name]; return c[len(c)-1] }
	// WDMs must degrade under drift far more than DACE.
	mscnDeg := last("MSCN").Median / first("MSCN").Median
	daceDeg := last("DACE").Median / first("DACE").Median
	if mscnDeg < daceDeg {
		t.Fatalf("MSCN degradation %vx should exceed DACE %vx", mscnDeg, daceDeg)
	}
	// DACE is the most accurate at the largest scale.
	for _, name := range []string{"MSCN", "QueryFormer", "PostgreSQL"} {
		if last("DACE").Median > last(name).Median {
			t.Fatalf("DACE (%v) should beat %s (%v) at max drift", last("DACE").Median, name, last(name).Median)
		}
	}
}

func TestFig8DACEStabilizesEarly(t *testing.T) {
	l, _ := quickLab()
	res := l.Fig8([]int{1, 3, 6})
	// With 3 training DBs DACE should already be within reach of its 6-DB
	// accuracy on JOB-light (the "3-5 databases suffice" claim, scaled).
	d3 := res.DACE[1].Median[workload.JOBLight]
	d6 := res.DACE[2].Median[workload.JOBLight]
	if d3 > d6*2.5 {
		t.Fatalf("DACE with 3 DBs (%v) far from 6-DB accuracy (%v)", d3, d6)
	}
	for i := range res.DACE {
		if math.IsNaN(res.DACE[i].Median[workload.Synthetic]) || math.IsNaN(res.ZeroShot[i].Median[workload.Synthetic]) {
			t.Fatal("NaN medians")
		}
	}
}

func TestFig9EmbeddingHelpsColdStart(t *testing.T) {
	l, _ := quickLab()
	res := l.Fig9([]int{60, 150})
	cold := res.Points[0]
	if cold.DACEMSCN.Median > cold.MSCN.Median {
		t.Fatalf("at %d queries DACE-MSCN (%v) should beat MSCN (%v)",
			cold.TrainQueries, cold.DACEMSCN.Median, cold.MSCN.Median)
	}
}

func TestFig10FullDACEWins(t *testing.T) {
	l, _ := quickLab()
	res := l.Fig10()
	for _, split := range W3Splits() {
		full := res.Median["DACE"][split]
		noLA := res.Median["DACE w/o LA"][split]
		if full > noLA*1.15 {
			t.Fatalf("%s: full DACE (%v) should not lose to w/o LA (%v)", split, full, noLA)
		}
	}
	// Geometric mean across splits: full DACE is the best variant overall.
	gm := func(name string) float64 {
		var vals []float64
		for _, split := range W3Splits() {
			vals = append(vals, res.Median[name][split])
		}
		return geoMean(vals)
	}
	full := gm("DACE")
	for _, v := range []string{"DACE w/o TA", "DACE w/o LA"} {
		if full > gm(v)*1.05 {
			t.Fatalf("full DACE (%v) loses to %s (%v)", full, v, gm(v))
		}
	}
}

func TestFig11LossAdjusterFlattensCurve(t *testing.T) {
	l, _ := quickLab()
	res := l.Fig11()
	if len(res.DACE) < 3 {
		t.Fatalf("too few buckets")
	}
	// Growth of median q-error from the smallest to the largest plans.
	growth := func(bs []NodeBucket) float64 { return bs[len(bs)-1].Median / bs[0].Median }
	if growth(res.DACE) > growth(res.NoLA)*1.25 {
		t.Fatalf("DACE curve (%vx) grows faster than w/o LA (%vx)", growth(res.DACE), growth(res.NoLA))
	}
}

func TestFig12ActualCardinalityHelpsWhenDataIsScarce(t *testing.T) {
	l, _ := quickLab()
	res := l.Fig12([]int{1, 3})
	// With a single training database, the oracle-cardinality variant should
	// be at least competitive on JOB-light.
	d1 := res.DACE[0].Median[workload.JOBLight]
	a1 := res.DACEA[0].Median[workload.JOBLight]
	if a1 > d1*1.5 {
		t.Fatalf("DACE-A (%v) should not be much worse than DACE (%v) at 1 DB", a1, d1)
	}
}
