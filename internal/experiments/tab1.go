package experiments

import (
	"dace/internal/baselines"
	"dace/internal/core"
	"dace/internal/dataset"
	"dace/internal/metrics"
	"dace/internal/workload"
)

// Table1Result holds per-split q-error summaries per estimator, in the
// paper's row order.
type Table1Result struct {
	Order     []string
	Summaries map[workload.MSCNSplit]map[string]metrics.Summary
	// DACE is returned for reuse (Fig. 6 integrates its embeddings).
	DACE *core.Model
}

// Table1 reproduces Table I: Workload 3 (MSCN benchmark on IMDB). The WDMs
// (MSCN, QPPNet, TPool, QueryFormer) and the PostgreSQL calibration train
// on the IMDB pool; the ADMs (Zero-Shot, DACE) train on other databases and
// never see IMDB. DACE-LoRA additionally fine-tunes DACE's adapters on the
// IMDB pool (the paper's instance-optimization-by-fine-tuning result).
func (l *Lab) Table1() Table1Result {
	pool := l.W3TrainingPool()
	acrossTrain := l.AcrossSamples(l.TrainingDBs("imdb", l.Cfg.TrainDBs), "M1")

	wdms := []baselines.Estimator{
		baselines.NewPostgreSQL(),
		l.tunedMSCN(),
		l.tunedQPPNet(),
		l.tunedTPool(),
		l.tunedQueryFormer(),
	}
	for _, e := range wdms {
		if err := e.Train(pool); err != nil {
			panic(err)
		}
	}

	zs := baselines.NewZeroShot(l.Env)
	zs.Epochs = l.Cfg.Epochs
	if err := zs.Train(acrossTrain); err != nil {
		panic(err)
	}

	dace := l.TrainDACE(acrossTrain, nil)

	// DACE-LoRA: a copy of the pre-trained DACE, adapters fine-tuned on the
	// within-database pool.
	daceLoRA := l.TrainDACE(acrossTrain, nil)
	daceLoRA.FineTuneLoRA(dataset.Plans(pool), 2e-3, l.Cfg.DACEEpochs)

	estimators := append(append([]baselines.Estimator{}, wdms...),
		zs,
		&DACEEstimator{M: dace},
		&DACEEstimator{M: daceLoRA, Label: "DACE-LoRA"},
	)

	res := Table1Result{DACE: dace, Summaries: map[workload.MSCNSplit]map[string]metrics.Summary{}}
	for _, e := range estimators {
		res.Order = append(res.Order, e.Name())
	}
	for _, split := range W3Splits() {
		samples := l.W3Split(split)
		res.Summaries[split] = map[string]metrics.Summary{}
		l.printf("Table I — %s\n%s\n", split, metrics.Header(split.String()))
		for _, e := range estimators {
			s := Evaluate(e, samples)
			res.Summaries[split][e.Name()] = s
			l.printf("%s\n", s.Row(e.Name()))
		}
		l.printf("\n")
	}
	return res
}

func (l *Lab) tunedMSCN() *baselines.MSCN {
	m := baselines.NewMSCN(l.Env)
	m.Epochs = l.Cfg.Epochs
	return m
}

func (l *Lab) tunedQPPNet() *baselines.QPPNet {
	q := baselines.NewQPPNet(l.Env)
	q.Epochs = l.Cfg.Epochs
	return q
}

func (l *Lab) tunedTPool() *baselines.TPool {
	tp := baselines.NewTPool(l.Env)
	tp.Epochs = l.Cfg.Epochs
	return tp
}

func (l *Lab) tunedQueryFormer() *baselines.QueryFormer {
	qf := baselines.NewQueryFormer(l.Env)
	qf.Epochs = l.Cfg.Epochs
	return qf
}

func (l *Lab) tunedZeroShot() *baselines.ZeroShot {
	zs := baselines.NewZeroShot(l.Env)
	zs.Epochs = l.Cfg.Epochs
	return zs
}
