package experiments

import (
	"dace/internal/baselines"
	"dace/internal/dataset"
	"dace/internal/metrics"
	"dace/internal/workload"
)

// Fig8Point is median q-error (per split) after training on k databases.
type Fig8Point struct {
	TrainDBs int
	Median   map[workload.MSCNSplit]float64
}

// Fig8Result holds the training-overhead curves for DACE and Zero-Shot.
type Fig8Result struct {
	DACE, ZeroShot []Fig8Point
}

// Fig8 reproduces Fig. 8: accuracy as a function of the number of training
// databases (excluding IMDB), evaluated on the Workload-3 splits. The
// paper's claim: DACE stabilizes with 3–5 databases, Zero-Shot needs 10–15.
func (l *Lab) Fig8(counts []int) Fig8Result {
	if counts == nil {
		counts = []int{1, 3, 5, 10, 15, 19}
	}
	var res Fig8Result
	for _, k := range counts {
		train := l.AcrossSamples(l.TrainingDBs("imdb", k), "M1")

		dace := l.TrainDACE(train, nil)
		zs := l.tunedZeroShot()
		if err := zs.Train(train); err != nil {
			panic(err)
		}

		dp := Fig8Point{TrainDBs: k, Median: map[workload.MSCNSplit]float64{}}
		zp := Fig8Point{TrainDBs: k, Median: map[workload.MSCNSplit]float64{}}
		for _, split := range W3Splits() {
			samples := l.W3Split(split)
			dp.Median[split] = Evaluate(&DACEEstimator{M: dace}, samples).Median
			zp.Median[split] = Evaluate(zs, samples).Median
		}
		res.DACE = append(res.DACE, dp)
		res.ZeroShot = append(res.ZeroShot, zp)
	}

	l.printf("Fig. 8 — median q-error by number of training databases\n")
	l.printf("%-10s %-12s", "#DBs", "model")
	for _, split := range W3Splits() {
		l.printf(" %12s", split)
	}
	l.printf("\n")
	for i := range res.DACE {
		l.printf("%-10d %-12s", res.DACE[i].TrainDBs, "DACE")
		for _, split := range W3Splits() {
			l.printf(" %12.2f", res.DACE[i].Median[split])
		}
		l.printf("\n%-10s %-12s", "", "Zero-Shot")
		for _, split := range W3Splits() {
			l.printf(" %12.2f", res.ZeroShot[i].Median[split])
		}
		l.printf("\n")
	}
	l.printf("\n")
	return res
}

// Fig9Point is MSCN accuracy at one training-set size.
type Fig9Point struct {
	TrainQueries int
	MSCN         metrics.Summary
	DACEMSCN     metrics.Summary
}

// Fig9Result holds the cold-start experiment plus the PostgreSQL reference.
type Fig9Result struct {
	Points     []Fig9Point
	PostgreSQL metrics.Summary
}

// Fig9 reproduces Fig. 9 (cold start): MSCN vs DACE-MSCN trained on
// progressively more queries, against the PostgreSQL reference, evaluated
// on JOB-light. The paper's claim: with DACE's embedding, MSCN beats
// PostgreSQL from ~100 training queries; alone it needs thousands.
func (l *Lab) Fig9(sizes []int) Fig9Result {
	pool := l.W3TrainingPool()
	test := l.W3Split(workload.JOBLight)
	if sizes == nil {
		sizes = []int{100, 300, len(pool)}
	}

	dace := l.TrainDACE(l.AcrossSamples(l.TrainingDBs("imdb", l.Cfg.TrainDBs), "M1"), nil)
	embed := func(s dataset.Sample) []float64 { return dace.Embed(s.Plan) }

	pg := baselines.NewPostgreSQL()
	if err := pg.Train(pool); err != nil {
		panic(err)
	}
	res := Fig9Result{PostgreSQL: Evaluate(pg, test)}

	seen := map[int]bool{}
	for _, n := range sizes {
		if n > len(pool) {
			n = len(pool)
		}
		if seen[n] {
			continue // sizes above the pool cap collapse to the same point
		}
		seen[n] = true
		sub := pool[:n]
		plain := l.tunedMSCN()
		if err := plain.Train(sub); err != nil {
			panic(err)
		}
		fused := l.tunedMSCN().WithEmbedding(dace.EmbedDim(), embed)
		if err := fused.Train(sub); err != nil {
			panic(err)
		}
		res.Points = append(res.Points, Fig9Point{
			TrainQueries: n,
			MSCN:         Evaluate(plain, test),
			DACEMSCN:     Evaluate(fused, test),
		})
	}

	l.printf("Fig. 9 — cold start: MSCN vs DACE-MSCN by training queries (JOB-light)\n")
	l.printf("%-14s %16s %16s\n", "#queries", "MSCN med|95th", "DACE-MSCN med|95th")
	for _, p := range res.Points {
		l.printf("%-14d %8.2f|%6.2f %10.2f|%6.2f\n",
			p.TrainQueries, p.MSCN.Median, p.MSCN.P95, p.DACEMSCN.Median, p.DACEMSCN.P95)
	}
	l.printf("%-14s %8.2f|%6.2f\n\n", "PostgreSQL", res.PostgreSQL.Median, res.PostgreSQL.P95)
	return res
}
