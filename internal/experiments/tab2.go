package experiments

import (
	"time"

	"dace/internal/baselines"
	"dace/internal/dataset"
	"dace/internal/optimizer"
	"dace/internal/workload"
)

// EfficiencyRow is one line of Table II.
type EfficiencyRow struct {
	Model        string
	SizeMB       float64
	TrainQPS     float64 // training throughput, queries/second
	InferenceQPS float64
}

// Table2Result is the efficiency comparison.
type Table2Result struct {
	Rows []EfficiencyRow
	// LoRASpeedup is fine-tuning throughput / full-training throughput for
	// DACE (the paper reports ≈1.9×).
	LoRASpeedup float64
}

// Table2 reproduces Table II: model size, training efficiency, and
// inference efficiency, measured on Workload 3. The PostgreSQL row's
// "inference" is the simulated planner computing its cost estimate, the
// same role EXPLAIN plays in the paper's measurement.
func (l *Lab) Table2() Table2Result {
	pool := l.W3TrainingPool()
	test := l.W3Split(workload.Synthetic)
	var res Table2Result

	// PostgreSQL: planning throughput.
	pg := baselines.NewPostgreSQL()
	if err := pg.Train(pool); err != nil {
		panic(err)
	}
	res.Rows = append(res.Rows, EfficiencyRow{
		Model:        "PostgreSQL",
		SizeMB:       0,
		InferenceQPS: l.plannerQPS(),
	})

	measure := func(e baselines.Estimator) {
		start := time.Now()
		if err := e.Train(pool); err != nil {
			panic(err)
		}
		trainQPS := float64(len(pool)*l.Cfg.Epochs) / time.Since(start).Seconds()
		res.Rows = append(res.Rows, EfficiencyRow{
			Model:        e.Name(),
			SizeMB:       e.SizeMB(),
			TrainQPS:     trainQPS,
			InferenceQPS: inferenceQPS(e, test),
		})
	}
	measure(l.tunedMSCN())
	measure(l.tunedQPPNet())
	measure(l.tunedTPool())
	measure(l.tunedQueryFormer())
	measure(l.tunedZeroShot())

	// DACE: full training.
	start := time.Now()
	dace := l.TrainDACE(pool, nil)
	daceTrainQPS := float64(len(pool)*l.Cfg.DACEEpochs) / time.Since(start).Seconds()
	de := &DACEEstimator{M: dace}
	res.Rows = append(res.Rows, EfficiencyRow{
		Model:        "DACE",
		SizeMB:       de.SizeMB(),
		TrainQPS:     daceTrainQPS,
		InferenceQPS: inferenceQPS(de, test),
	})

	// DACE-LoRA: fine-tuning throughput (only the adapters train).
	start = time.Now()
	dace.FineTuneLoRA(dataset.Plans(pool), 2e-3, l.Cfg.DACEEpochs)
	tuneQPS := float64(len(pool)*l.Cfg.DACEEpochs) / time.Since(start).Seconds()
	dl := &DACEEstimator{M: dace, Label: "DACE-LoRA"}
	loraSize := float64(dace.TrainableParams()) * 4 / (1024 * 1024)
	res.Rows = append(res.Rows, EfficiencyRow{
		Model:        "DACE-LoRA",
		SizeMB:       loraSize,
		TrainQPS:     tuneQPS,
		InferenceQPS: inferenceQPS(dl, test),
	})
	res.LoRASpeedup = tuneQPS / daceTrainQPS

	l.printf("Table II — efficiency (Workload 3)\n")
	l.printf("%-18s %12s %14s %16s\n", "model", "size (MB)", "train (q/s)", "inference (q/s)")
	for _, r := range res.Rows {
		l.printf("%-18s %12.3f %14.0f %16.0f\n", r.Model, r.SizeMB, r.TrainQPS, r.InferenceQPS)
	}
	l.printf("LoRA fine-tuning throughput = %.2f× full training\n\n", res.LoRASpeedup)
	return res
}

// inferenceQPS times repeated predictions until the clock resolves.
func inferenceQPS(e baselines.Estimator, test []dataset.Sample) float64 {
	n := 0
	start := time.Now()
	for time.Since(start) < 250*time.Millisecond {
		for _, s := range test {
			e.Predict(s)
			n++
		}
	}
	return float64(n) / time.Since(start).Seconds()
}

// plannerQPS measures the simulated optimizer's end-to-end planning rate,
// the stand-in for PostgreSQL producing cost estimates.
func (l *Lab) plannerQPS() float64 {
	db := l.DB("imdb")
	qs := workload.MSCN(db, workload.Synthetic, 100)
	pl := optimizer.New(db)
	n := 0
	start := time.Now()
	for time.Since(start) < 250*time.Millisecond {
		for _, q := range qs {
			if _, err := pl.Plan(q); err != nil {
				panic(err)
			}
			n++
		}
	}
	return float64(n) / time.Since(start).Seconds()
}
