package experiments

import (
	"dace/internal/core"
	"dace/internal/workload"
)

// Fig10Result is the ablation study: full DACE vs without tree attention
// (w/o TA), without sub-plan learning (w/o SP, α=0), and without the loss
// adjuster (w/o LA, α=1).
type Fig10Result struct {
	Median map[string]map[workload.MSCNSplit]float64
}

// Fig10 reproduces the ablation figure on the Workload-3 splits with all
// variants trained across databases (IMDB excluded).
func (l *Lab) Fig10() Fig10Result {
	train := l.AcrossSamples(l.TrainingDBs("imdb", l.Cfg.TrainDBs), "M1")
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"DACE", nil},
		{"DACE w/o TA", func(c *core.Config) { c.TreeAttention = false }},
		{"DACE w/o SP", func(c *core.Config) { c.Alpha = 0 }},
		{"DACE w/o LA", func(c *core.Config) { c.Alpha = 1 }},
	}
	res := Fig10Result{Median: map[string]map[workload.MSCNSplit]float64{}}
	for _, v := range variants {
		m := l.TrainDACE(train, v.mutate)
		res.Median[v.name] = map[workload.MSCNSplit]float64{}
		for _, split := range W3Splits() {
			res.Median[v.name][split] = Evaluate(&DACEEstimator{M: m, Label: v.name}, l.W3Split(split)).Median
		}
	}
	l.printf("Fig. 10 — ablation (median q-error)\n%-14s", "variant")
	for _, split := range W3Splits() {
		l.printf(" %12s", split)
	}
	l.printf("\n")
	for _, v := range variants {
		l.printf("%-14s", v.name)
		for _, split := range W3Splits() {
			l.printf(" %12.2f", res.Median[v.name][split])
		}
		l.printf("\n")
	}
	l.printf("\n")
	return res
}

// Fig11Result compares DACE and DACE w/o LA across plan sizes.
type Fig11Result struct {
	DACE, NoLA []NodeBucket
}

// Fig11 reproduces Fig. 11: q-error by plan node count on the held-out
// IMDB complex workload. The paper's claim: without the loss adjuster,
// error grows with plan size; with it, DACE is nearly flat.
func (l *Lab) Fig11() Fig11Result {
	train := l.AcrossSamples(l.TrainingDBs("imdb", l.Cfg.TrainDBs), "M1")
	test := l.Workload("imdb", "M1")
	bounds := fig4Bounds

	full := l.TrainDACE(train, nil)
	noLA := l.TrainDACE(train, func(c *core.Config) { c.Alpha = 1 })

	res := Fig11Result{
		DACE: nodeBuckets(&DACEEstimator{M: full}, test, bounds),
		NoLA: nodeBuckets(&DACEEstimator{M: noLA, Label: "DACE w/o LA"}, test, bounds),
	}
	l.printf("Fig. 11 — q-error by plan node count (IMDB held out)\n")
	l.printf("%-10s %16s %16s\n", "nodes ≤", "DACE med", "w/o LA med")
	for i := range res.DACE {
		l.printf("%-10d %16.2f %16.2f\n", res.DACE[i].MaxNodes, res.DACE[i].Median, res.NoLA[i].Median)
	}
	l.printf("\n")
	return res
}

// Fig12Result compares DACE with DACE-A (true-cardinality input) as the
// number of training databases grows.
type Fig12Result struct {
	DACE, DACEA []Fig8Point
}

// Fig12 reproduces Fig. 12: DACE-A replaces the optimizer's estimated
// cardinalities with true cardinalities — an oracle unavailable in
// practice. The claim: DACE-A is better at low database counts, and DACE
// approaches it as general knowledge accumulates.
func (l *Lab) Fig12(counts []int) Fig12Result {
	if counts == nil {
		counts = []int{1, 3, 5, 10, 15, 19}
	}
	var res Fig12Result
	for _, k := range counts {
		train := l.AcrossSamples(l.TrainingDBs("imdb", k), "M1")
		dace := l.TrainDACE(train, nil)
		daceA := l.TrainDACE(train, func(c *core.Config) { c.ActualCardInput = true })
		dp := Fig8Point{TrainDBs: k, Median: map[workload.MSCNSplit]float64{}}
		ap := Fig8Point{TrainDBs: k, Median: map[workload.MSCNSplit]float64{}}
		for _, split := range W3Splits() {
			samples := l.W3Split(split)
			dp.Median[split] = Evaluate(&DACEEstimator{M: dace}, samples).Median
			ap.Median[split] = Evaluate(&DACEEstimator{M: daceA, Label: "DACE-A"}, samples).Median
		}
		res.DACE = append(res.DACE, dp)
		res.DACEA = append(res.DACEA, ap)
	}
	l.printf("Fig. 12 — DACE vs DACE-A (true cardinalities) by training databases\n")
	l.printf("%-10s %-10s", "#DBs", "model")
	for _, split := range W3Splits() {
		l.printf(" %12s", split)
	}
	l.printf("\n")
	for i := range res.DACE {
		l.printf("%-10d %-10s", res.DACE[i].TrainDBs, "DACE")
		for _, split := range W3Splits() {
			l.printf(" %12.2f", res.DACE[i].Median[split])
		}
		l.printf("\n%-10s %-10s", "", "DACE-A")
		for _, split := range W3Splits() {
			l.printf(" %12.2f", res.DACEA[i].Median[split])
		}
		l.printf("\n")
	}
	l.printf("\n")
	return res
}
