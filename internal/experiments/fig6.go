package experiments

import (
	"dace/internal/baselines"
	"dace/internal/dataset"
	"dace/internal/metrics"
	"dace/internal/workload"
)

// Fig6Result compares WDMs with and without DACE's pre-trained embeddings
// on JOB-light.
type Fig6Result struct {
	MSCN, DACEMSCN               metrics.Summary
	QueryFormer, DACEQueryFormer metrics.Summary
}

// Fig6 reproduces Fig. 6 (knowledge integration): DACE, pre-trained across
// databases, acts as an encoder; its per-plan embedding is concatenated
// into MSCN's and QueryFormer's final layers (Eq. 9). Both pairs train on
// the same Workload-3 pool and are evaluated on JOB-light.
func (l *Lab) Fig6() Fig6Result {
	pool := l.W3TrainingPool()
	jobLight := l.W3Split(workload.JOBLight)

	dace := l.TrainDACE(l.AcrossSamples(l.TrainingDBs("imdb", l.Cfg.TrainDBs), "M1"), nil)
	embed := func(s dataset.Sample) []float64 { return dace.Embed(s.Plan) }

	train := func(e baselines.Estimator) metrics.Summary {
		if err := e.Train(pool); err != nil {
			panic(err)
		}
		return Evaluate(e, jobLight)
	}

	res := Fig6Result{
		MSCN:            train(l.tunedMSCN()),
		DACEMSCN:        train(l.tunedMSCN().WithEmbedding(dace.EmbedDim(), embed)),
		QueryFormer:     train(l.tunedQueryFormer()),
		DACEQueryFormer: train(l.tunedQueryFormer().WithEmbedding(dace.EmbedDim(), embed)),
	}

	l.printf("Fig. 6 — DACE as pre-trained encoder (JOB-light)\n")
	l.printf("%s\n", metrics.Header("model"))
	l.printf("%s\n", res.MSCN.Row("MSCN"))
	l.printf("%s\n", res.DACEMSCN.Row("DACE-MSCN"))
	l.printf("%s\n", res.QueryFormer.Row("QueryFormer"))
	l.printf("%s\n\n", res.DACEQueryFormer.Row("DACE-QueryFormer"))
	return res
}
