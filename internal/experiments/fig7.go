package experiments

import (
	"fmt"

	"dace/internal/baselines"
	"dace/internal/dataset"
	"dace/internal/executor"
	"dace/internal/schema"
	"dace/internal/workload"
)

// Fig7Point is one model's accuracy at one TPC-H scale.
type Fig7Point struct {
	Scale  float64
	Median float64
	P95    float64
}

// Fig7Result maps model name to its drift curve.
type Fig7Result struct {
	Scales []float64
	Curves map[string][]Fig7Point
}

// Fig7 reproduces the data-drift experiment: ADMs (DACE, Zero-Shot) train
// on other databases; WDMs (MSCN, QueryFormer) and the PostgreSQL
// calibration train on TPC-H at scale 1. All models are then evaluated on
// the *same query templates* executed against progressively larger TPC-H
// instances — data drift without retraining.
func (l *Lab) Fig7() Fig7Result {
	scales := []float64{1, 5, 10, 50, 100}
	res := Fig7Result{Scales: scales, Curves: map[string][]Fig7Point{}}

	// Within-database training data: TPC-H scale 1.
	base := schema.TPCH(1)
	baseQs := workload.Complex(base, l.Cfg.QueriesPerDB*2, int64(schema.Hash64("fig7-train")))
	baseSamples, err := dataset.Collect(base, baseQs, executor.M1())
	if err != nil {
		panic(err)
	}
	// The drift test re-executes a held-out template set at every scale.
	testQs := workload.Complex(base, l.Cfg.QueriesPerDB, int64(schema.Hash64("fig7-test")))

	// WDMs need the scaled catalogs visible for feature lookup; keep the
	// scale-1 view (that is the point: their world model goes stale).
	env := baselines.NewEnv(append([]*schema.Database{base}, l.DBs...)...)

	pg := baselines.NewPostgreSQL()
	mscn := baselines.NewMSCN(env)
	mscn.Epochs = l.Cfg.Epochs
	qf := baselines.NewQueryFormer(env)
	qf.Epochs = l.Cfg.Epochs
	for _, e := range []baselines.Estimator{pg, mscn, qf} {
		if err := e.Train(baseSamples); err != nil {
			panic(err)
		}
	}

	acrossTrain := l.AcrossSamples(l.TrainingDBs("tpc_h", l.Cfg.TrainDBs), "M1")
	dace := l.TrainDACE(acrossTrain, nil)
	zs := l.tunedZeroShot()
	if err := zs.Train(acrossTrain); err != nil {
		panic(err)
	}

	estimators := []baselines.Estimator{
		pg, mscn, qf, zs, &DACEEstimator{M: dace},
	}

	for _, scale := range scales {
		db := schema.TPCH(scale)
		samples, err := dataset.Collect(db, testQs, executor.M1())
		if err != nil {
			panic(fmt.Sprintf("fig7 scale %g: %v", scale, err))
		}
		for _, e := range estimators {
			s := Evaluate(e, samples)
			res.Curves[e.Name()] = append(res.Curves[e.Name()], Fig7Point{Scale: scale, Median: s.Median, P95: s.P95})
		}
	}

	l.printf("Fig. 7 — data drift on TPC-H (median q-error | 95th)\n")
	l.printf("%-18s", "model")
	for _, s := range scales {
		l.printf(" %14s", fmt.Sprintf("scale %g", s))
	}
	l.printf("\n")
	for _, e := range estimators {
		l.printf("%-18s", e.Name())
		for _, p := range res.Curves[e.Name()] {
			l.printf(" %6.2f | %5.2f", p.Median, p.P95)
		}
		l.printf("\n")
	}
	l.printf("\n")
	return res
}
