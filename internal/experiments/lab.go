// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the simulated substrate: one driver per artifact
// (Fig. 4–12, Tables I–II), all sharing a Lab that caches collected
// workloads and trained models.
//
// Scales are configurable: the paper uses 10,000 queries per database and a
// 100,000-query Workload-3 pool; the defaults here are reduced so a full
// run finishes on one CPU core, and every driver takes the scale from the
// Config rather than hard-coding it.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"dace/internal/baselines"
	"dace/internal/core"
	"dace/internal/dataset"
	"dace/internal/executor"
	"dace/internal/metrics"
	"dace/internal/nn"
	"dace/internal/schema"
	"dace/internal/workload"
)

// Config scales the experiment suite.
type Config struct {
	// QueriesPerDB is the per-database complex-workload size (paper: 10,000).
	QueriesPerDB int
	// TrainDBs is how many training databases each across-database run uses
	// (paper: all 19 remaining; reducing this mostly costs tail accuracy).
	TrainDBs int
	// W3Train is the Workload-3 within-database training-pool size
	// (paper: 100,000).
	W3Train int
	// W3Synthetic, W3Scale, W3JOBLight are the test-split sizes
	// (paper: 5000, 500, 70).
	W3Synthetic, W3Scale, W3JOBLight int
	// Epochs for baseline training; DACE uses DACEEpochs.
	Epochs     int
	DACEEpochs int
	// Workers sizes the data-parallel pools used for DACE training and
	// test-set evaluation; <= 0 means one worker per CPU. Any value yields
	// bitwise-identical trained models (see nn.GradPool).
	Workers int
	// Out receives the printed tables (default os.Stdout).
	Out io.Writer
}

// DefaultConfig returns the reduced-scale defaults.
func DefaultConfig() Config {
	return Config{
		QueriesPerDB: 150,
		TrainDBs:     6,
		W3Train:      800,
		W3Synthetic:  300,
		W3Scale:      150,
		W3JOBLight:   70,
		Epochs:       10,
		DACEEpochs:   16,
	}
}

// QuickConfig returns a tiny configuration for tests.
func QuickConfig() Config {
	return Config{
		QueriesPerDB: 60,
		TrainDBs:     3,
		W3Train:      150,
		W3Synthetic:  60,
		W3Scale:      40,
		W3JOBLight:   30,
		Epochs:       6,
		DACEEpochs:   10,
	}
}

// Lab caches databases, workloads, and the environment shared by all
// experiment drivers.
type Lab struct {
	Cfg    Config
	DBs    []*schema.Database
	Env    *baselines.Env
	byName map[string]*schema.Database
	cache  map[string][]dataset.Sample
}

// NewLab builds a lab over the 20-database benchmark.
func NewLab(cfg Config) *Lab {
	if cfg.Out == nil {
		cfg.Out = os.Stdout
	}
	dbs := schema.Benchmark20()
	l := &Lab{
		Cfg:    cfg,
		DBs:    dbs,
		Env:    baselines.NewEnv(dbs...),
		byName: map[string]*schema.Database{},
		cache:  map[string][]dataset.Sample{},
	}
	for _, db := range dbs {
		l.byName[db.Name] = db
	}
	return l
}

// DB returns a benchmark database by name.
func (l *Lab) DB(name string) *schema.Database { return l.byName[name] }

func (l *Lab) printf(format string, args ...any) {
	fmt.Fprintf(l.Cfg.Out, format, args...)
}

// machine resolves a machine profile by name.
func machine(name string) executor.Machine {
	if name == "M2" {
		return executor.M2()
	}
	return executor.M1()
}

// Workload returns the cached complex workload of one database labeled on
// one machine ("M1" or "M2").
func (l *Lab) Workload(db, machineName string) []dataset.Sample {
	key := db + "|" + machineName + "|" + fmt.Sprint(l.Cfg.QueriesPerDB)
	if s, ok := l.cache[key]; ok {
		return s
	}
	samples, err := dataset.Collect(l.DB(db),
		workload.Complex(l.DB(db), l.Cfg.QueriesPerDB, int64(schema.Hash64("complex", db))),
		machine(machineName))
	if err != nil {
		panic(fmt.Sprintf("experiments: collect %s on %s: %v", db, machineName, err))
	}
	l.cache[key] = samples
	return samples
}

// TrainingDBs returns up to n training database names, excluding the given
// test database — the leave-one-out protocol. Selection is deterministic.
func (l *Lab) TrainingDBs(exclude string, n int) []string {
	var names []string
	for _, db := range l.DBs {
		if db.Name != exclude {
			names = append(names, db.Name)
		}
	}
	// Deterministic shuffle keyed on the excluded database so different
	// leave-one-out runs see different-but-stable training mixes.
	sort.Slice(names, func(i, j int) bool {
		return schema.Hash64("loo", exclude, names[i]) < schema.Hash64("loo", exclude, names[j])
	})
	if n > len(names) {
		n = len(names)
	}
	return names[:n]
}

// AcrossSamples concatenates the complex workloads of the given databases
// on the given machine.
func (l *Lab) AcrossSamples(dbs []string, machineName string) []dataset.Sample {
	var out []dataset.Sample
	for _, db := range dbs {
		out = append(out, l.Workload(db, machineName)...)
	}
	return out
}

// W3TrainingPool returns the Workload-3 within-database (IMDB) training set.
func (l *Lab) W3TrainingPool() []dataset.Sample {
	key := fmt.Sprintf("w3train|%d", l.Cfg.W3Train)
	if s, ok := l.cache[key]; ok {
		return s
	}
	samples, err := dataset.Collect(l.DB("imdb"),
		workload.MSCNTraining(l.DB("imdb"), l.Cfg.W3Train), executor.M1())
	if err != nil {
		panic(err)
	}
	l.cache[key] = samples
	return samples
}

// W3Split returns one Workload-3 test split.
func (l *Lab) W3Split(split workload.MSCNSplit) []dataset.Sample {
	n := map[workload.MSCNSplit]int{
		workload.Synthetic: l.Cfg.W3Synthetic,
		workload.Scale:     l.Cfg.W3Scale,
		workload.JOBLight:  l.Cfg.W3JOBLight,
	}[split]
	key := fmt.Sprintf("w3|%s|%d", split, n)
	if s, ok := l.cache[key]; ok {
		return s
	}
	samples, err := dataset.Collect(l.DB("imdb"), workload.MSCN(l.DB("imdb"), split, n), executor.M1())
	if err != nil {
		panic(err)
	}
	l.cache[key] = samples
	return samples
}

// W3Splits lists the three split identifiers in table order.
func W3Splits() []workload.MSCNSplit {
	return []workload.MSCNSplit{workload.Synthetic, workload.Scale, workload.JOBLight}
}

// Evaluate computes the q-error summary of an estimator over samples.
// Predictions are independent model-read-only computations, so they fan out
// across every CPU; the summary is order-insensitive by construction.
func Evaluate(e baselines.Estimator, samples []dataset.Sample) metrics.Summary {
	qs := make([]float64, len(samples))
	nn.ParallelFor(len(samples), 0, func(i int) {
		qs[i] = metrics.QError(e.Predict(samples[i]), samples[i].Plan.Root.ActualMS)
	})
	return metrics.Summarize(qs)
}

// DACEEstimator adapts core.Model to the Estimator interface.
type DACEEstimator struct {
	M     *core.Model
	Label string
}

// Name implements baselines.Estimator.
func (d *DACEEstimator) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "DACE"
}

// Train implements baselines.Estimator; DACE models are trained via
// core.Train, so this is unused (the harness trains explicitly).
func (d *DACEEstimator) Train(samples []dataset.Sample) error {
	return fmt.Errorf("dace: train via core.Train")
}

// Predict implements baselines.Estimator.
func (d *DACEEstimator) Predict(s dataset.Sample) float64 { return d.M.Predict(s.Plan) }

// SizeMB implements baselines.Estimator.
func (d *DACEEstimator) SizeMB() float64 {
	var n int
	for _, p := range d.M.Params() {
		n += len(p.Value.Data)
	}
	return float64(n) * 4 / (1024 * 1024)
}

// TrainDACE trains a DACE model at the lab's scale with the given config
// tweaks applied.
func (l *Lab) TrainDACE(samples []dataset.Sample, mutate func(*core.Config)) *core.Model {
	cfg := core.DefaultConfig()
	cfg.Epochs = l.Cfg.DACEEpochs
	cfg.Workers = l.Cfg.Workers
	if mutate != nil {
		mutate(&cfg)
	}
	return core.Train(dataset.Plans(samples), cfg)
}

// geoMean returns the geometric mean of xs (which must be positive).
func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
