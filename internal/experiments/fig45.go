package experiments

import (
	"sort"

	"dace/internal/baselines"
	"dace/internal/dataset"
	"dace/internal/metrics"
)

// fig4Bounds bucket plans by node count, starting where join plans begin
// (the paper's Fig. 4/11 x-axes cover roughly 10–25 nodes).
var fig4Bounds = []int{8, 11, 14, 17, 1000}

// NodeBucket is one point of a q-error-by-plan-size curve.
type NodeBucket struct {
	MaxNodes int // bucket upper bound (inclusive)
	Mean     float64
	Median   float64
	N        int
}

// fig4MinNodes drops trivial plans (single scans, point lookups) from the
// by-plan-size curves, matching the paper's x-axis which starts around 10.
const fig4MinNodes = 6

// nodeBuckets groups samples by plan node count and summarizes the q-error
// of estimator e in each group. Plans below fig4MinNodes are excluded.
func nodeBuckets(e baselines.Estimator, samples []dataset.Sample, bounds []int) []NodeBucket {
	group := make(map[int][]float64)
	for _, s := range samples {
		n := s.Plan.NodeCount()
		if n < fig4MinNodes {
			continue
		}
		b := bounds[len(bounds)-1]
		for _, ub := range bounds {
			if n <= ub {
				b = ub
				break
			}
		}
		group[b] = append(group[b], metrics.QError(e.Predict(s), s.Plan.Root.ActualMS))
	}
	var out []NodeBucket
	for _, ub := range bounds {
		qs := group[ub]
		if len(qs) == 0 {
			continue
		}
		sum := metrics.Summarize(qs)
		out = append(out, NodeBucket{MaxNodes: ub, Mean: sum.Mean, Median: sum.Median, N: len(qs)})
	}
	return out
}

// Fig4Result holds the motivation experiment: Zero-Shot's mean q-error
// growing with plan size on unseen databases.
type Fig4Result struct {
	TestDBs []string
	Buckets []NodeBucket
}

// Fig4 reproduces the paper's Fig. 4: train Zero-Shot across databases,
// test on held-out databases, bucket q-error by node count. The paper runs
// full 20-way leave-one-out; the scale here is Config-bound.
func (l *Lab) Fig4() Fig4Result {
	testDBs := []string{"imdb", "baseball"}
	res := Fig4Result{TestDBs: testDBs}
	// Buckets start at 8 nodes, as in the paper's Fig. 4 (x-axis ≈ 10–25):
	// the claim is about the error *compounding* in join-heavy plans.
	bounds := fig4Bounds
	collected := map[int][]float64{}
	for _, test := range testDBs {
		zs := baselines.NewZeroShot(l.Env)
		zs.Epochs = l.Cfg.Epochs
		train := l.AcrossSamples(l.TrainingDBs(test, l.Cfg.TrainDBs), "M1")
		if err := zs.Train(train); err != nil {
			panic(err)
		}
		for _, b := range nodeBuckets(zs, l.Workload(test, "M1"), bounds) {
			collected[b.MaxNodes] = append(collected[b.MaxNodes], b.Mean)
		}
	}
	for _, ub := range bounds {
		if vals, ok := collected[ub]; ok {
			res.Buckets = append(res.Buckets, NodeBucket{MaxNodes: ub, Mean: geoMean(vals), N: len(vals)})
		}
	}
	l.printf("Fig. 4 — Zero-Shot mean q-error by plan node count (unseen databases)\n")
	l.printf("%-12s %10s\n", "nodes ≤", "mean qerr")
	for _, b := range res.Buckets {
		l.printf("%-12d %10.2f\n", b.MaxNodes, b.Mean)
	}
	l.printf("\n")
	return res
}

// Fig5Row is one database's leave-one-out result.
type Fig5Row struct {
	DB       string
	DACE     float64 // median q-error, workload 1
	ZeroShot float64 // median q-error, workload 1
	DACELoRA float64 // median q-error, workload 2 after LoRA fine-tuning
}

// Fig5Result is the across-database accuracy figure.
type Fig5Result struct {
	Rows []Fig5Row
	// Wins counts databases where DACE's median beats Zero-Shot's.
	Wins int
}

// Fig5 reproduces Fig. 5: leave-one-out across the benchmark. For each test
// database, DACE and Zero-Shot train on other databases' workloads (M1);
// DACE is then LoRA-fine-tuned on the *other* databases' M2 workloads and
// tested on the held-out database's M2 workload (across-more).
//
// testDBs limits which databases are held out (nil = all 20).
func (l *Lab) Fig5(testDBs []string) Fig5Result {
	if testDBs == nil {
		for _, db := range l.DBs {
			testDBs = append(testDBs, db.Name)
		}
	}
	sort.Strings(testDBs)
	var res Fig5Result
	for _, test := range testDBs {
		trainDBs := l.TrainingDBs(test, l.Cfg.TrainDBs)
		trainM1 := l.AcrossSamples(trainDBs, "M1")

		dace := l.TrainDACE(trainM1, nil)
		zs := baselines.NewZeroShot(l.Env)
		zs.Epochs = l.Cfg.Epochs
		if err := zs.Train(trainM1); err != nil {
			panic(err)
		}

		testM1 := l.Workload(test, "M1")
		row := Fig5Row{
			DB:       test,
			DACE:     Evaluate(&DACEEstimator{M: dace}, testM1).Median,
			ZeroShot: Evaluate(zs, testM1).Median,
		}

		// Across-more: fine-tune on the training DBs' M2 labels, test on the
		// held-out DB's M2 labels.
		trainM2 := l.AcrossSamples(trainDBs, "M2")
		dace.FineTuneLoRA(dataset.Plans(trainM2), 2e-3, l.Cfg.DACEEpochs)
		row.DACELoRA = Evaluate(&DACEEstimator{M: dace, Label: "DACE-LoRA"}, l.Workload(test, "M2")).Median

		if row.DACE < row.ZeroShot {
			res.Wins++
		}
		res.Rows = append(res.Rows, row)
	}
	l.printf("Fig. 5 — across-database median q-error (leave-one-out)\n")
	l.printf("%-16s %10s %10s %14s\n", "database", "DACE", "Zero-Shot", "DACE-LoRA(M2)")
	for _, r := range res.Rows {
		l.printf("%-16s %10.2f %10.2f %14.2f\n", r.DB, r.DACE, r.ZeroShot, r.DACELoRA)
	}
	l.printf("DACE beats Zero-Shot on %d/%d databases\n\n", res.Wins, len(res.Rows))
	return res
}
