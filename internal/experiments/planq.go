package experiments

import (
	"dace/internal/core"
	"dace/internal/executor"
	"dace/internal/optimizer"
	"dace/internal/schema"
	"dace/internal/workload"
)

// PlanQuality measures what the estimator is *for*: end-to-end plan
// selection. For each database it trains a within-database DACE model,
// plugs the memoized candidate scorer into the Selinger DP (the classic
// cost prunes, DACE chooses), and compares the chosen plans of a held-out
// query set against the classic planner's — by the simulated executor's
// actual latency, under identical per-query noise (the executor seeds noise
// by query ID, so the two plans of a query run on the same "machine
// conditions" and differ only by plan shape).
//
// dbs selects the benchmark databases (nil = all 20). Reported per
// database: how many plans changed, the win/loss split among changed
// plans, total actual latency of classic vs DACE-guided choices, the
// geometric-mean speedup, and the fraction of candidate encoding rows the
// scorer spliced from its memo instead of re-featurizing (the memoization
// payoff over the DP's overlapping candidate traffic).
func (l *Lab) PlanQuality(dbs []string) {
	if dbs == nil {
		for _, db := range l.DBs {
			dbs = append(dbs, db.Name)
		}
	}
	l.printf("Plan quality: DACE-guided DP join search vs classic cost (chosen-plan actual latency)\n")
	l.printf("%-14s %8s %8s %8s %12s %12s %9s %9s\n",
		"database", "queries", "changed", "won", "classic ms", "dace ms", "geo-spd", "spliced")

	var allRatios []float64
	var totChanged, totWon, totQueries int
	for _, name := range dbs {
		db := l.DB(name)
		m := l.TrainDACE(l.Workload(name, "M1"), nil)
		sc := core.NewScorer(m)

		classic := optimizer.New(db)
		guided := optimizer.New(db)
		guided.CostModel = sc

		// A fresh query set, disjoint from the training workload by seed.
		qs := workload.Complex(db, l.Cfg.QueriesPerDB, int64(schema.Hash64("planq", name)))
		ex := executor.New(db, executor.M1())

		var classicMS, daceMS float64
		var ratios []float64
		changed, won := 0, 0
		for _, q := range qs {
			pc, err := classic.Plan(q)
			if err != nil {
				panic(err)
			}
			pd, err := guided.Plan(q)
			if err != nil {
				panic(err)
			}
			lc, err := ex.Run(pc, q.ID)
			if err != nil {
				panic(err)
			}
			ld, err := ex.Run(pd, q.ID)
			if err != nil {
				panic(err)
			}
			classicMS += lc
			daceMS += ld
			ratios = append(ratios, lc/ld)
			if pc.Fingerprint() != pd.Fingerprint() {
				changed++
				if ld < lc {
					won++
				}
			}
		}
		allRatios = append(allRatios, ratios...)
		totChanged += changed
		totWon += won
		totQueries += len(qs)
		st := sc.Stats()
		spliced := float64(st.NodesCopied) / float64(st.NodesCopied+st.NodesEncoded)
		l.printf("%-14s %8d %8d %8d %12.1f %12.1f %8.3fx %8.1f%%\n",
			name, len(qs), changed, won, classicMS, daceMS,
			geoMean(ratios), 100*spliced)
	}
	l.printf("%-14s %8d %8d %8d   geo-mean speedup %.3fx\n",
		"overall", totQueries, totChanged, totWon, geoMean(allRatios))
}
